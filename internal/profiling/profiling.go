// Package profiling is the shared -cpuprofile/-memprofile plumbing for
// the CLI binaries (varuna-bench, varuna-sim run): register the two
// flags on a FlagSet, Start after parsing, defer Stop. Flag names,
// semantics and the forced-GC allocation snapshot are identical across
// tools, so a wall_ms regression flagged by the CI perf gate can be
// diagnosed with the same incantation everywhere:
//
//	<tool> ... -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profile destinations for one tool.
type Flags struct {
	tool string
	cpu  *string
	mem  *string
	cpuF *os.File
}

// Register adds -cpuprofile and -memprofile to fs. tool prefixes error
// messages ("varuna-bench: -cpuprofile: ...").
func Register(fs *flag.FlagSet, tool string) *Flags {
	return &Flags{
		tool: tool,
		cpu:  fs.String("cpuprofile", "", "write a CPU profile of the run to this file"),
		mem:  fs.String("memprofile", "", "write an end-of-run allocation profile to this file"),
	}
}

// Start begins CPU profiling when -cpuprofile was set. Call after the
// FlagSet is parsed; pair with a deferred Stop.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("%s: -cpuprofile: %w", f.tool, err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("%s: -cpuprofile: %w", f.tool, err)
	}
	f.cpuF = file
	return nil
}

// Stop flushes the CPU profile and, when -memprofile was set,
// snapshots the allocation profile after a forced GC so retained
// allocations are visible. Errors are reported to stderr (the process
// is exiting; the run's own outcome should not be masked).
func (f *Flags) Stop() {
	if f.cpuF != nil {
		pprof.StopCPUProfile()
		f.cpuF.Close()
		f.cpuF = nil
	}
	if *f.mem == "" {
		return
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", f.tool, err)
		return
	}
	defer file.Close()
	runtime.GC() // settle the live heap so retained allocations are visible
	if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", f.tool, err)
	}
}
