package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterAddsBothFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	Register(fs, "x")
	for _, name := range []string{"cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not registered", name)
		}
	}
}

func TestUnsetFlagsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p := Register(fs, "x")
	fs.Parse(nil)
	if err := p.Start(); err != nil {
		t.Fatalf("Start with no flags: %v", err)
	}
	p.Stop() // must not panic or create files
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p := Register(fs, "x")
	fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err %v)", path, err)
		}
	}
}

func TestStartErrorMentionsTool(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p := Register(fs, "mytool")
	fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")})
	err := p.Start()
	if err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
	if got := err.Error(); len(got) < 6 || got[:6] != "mytool" {
		t.Fatalf("error %q does not lead with the tool name", got)
	}
}
