package model

import (
	"math"
	"strings"
	"testing"
)

func TestZooParamCounts(t *testing.T) {
	// Parameter counts must land near the published sizes.
	cases := []struct {
		spec *Spec
		want float64 // billions
		tol  float64 // relative
	}{
		{BERTLarge(), 0.34, 0.15},
		{GPT2Small355M(), 0.355, 0.15},
		{GPT2XL2B(), 2.5, 0.10},
		{GPT2Megatron8B(), 8.3, 0.05},
		{GPT2Twenty19B(), 19.2, 0.05},
		{GPT2Twenty20B(), 20.0, 0.05},
		{GPT2TwoHundredB(), 200.0, 0.02},
	}
	for _, c := range cases {
		got := float64(c.spec.Params()) / 1e9
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s: %.3fB params, want %.3fB ±%.0f%%", c.spec.Name, got, c.want, c.tol*100)
		}
	}
}

func TestBlockActivationMatchesPaper(t *testing.T) {
	// §3.1: "for 2.5B GPT-2, this is only 3.75 MB per input example".
	s := GPT2XL2B()
	gotMB := float64(s.BlockActivationBytes()) / (1 << 20)
	if math.Abs(gotMB-3.75) > 0.01 {
		t.Fatalf("block activation = %.3f MB, want 3.75 MB", gotMB)
	}
}

func TestOpsStructure(t *testing.T) {
	s := Build("tiny", 2, 64, 32, 100, true)
	if len(s.Ops) != 2+4*2 {
		t.Fatalf("ops = %d, want embedding + 4·layers + head = %d", len(s.Ops), 2+4*2)
	}
	if s.Ops[0].Name != "embedding" || s.Ops[len(s.Ops)-1].Name != "lm_head" {
		t.Fatal("op sequence must start with embedding and end with lm_head")
	}
	// Tied embeddings: head owns no params, both in shared group.
	if s.Ops[len(s.Ops)-1].Params != 0 {
		t.Fatal("tied lm_head must own no parameters")
	}
	if s.Ops[0].SharedGroup != "embedding" || s.Ops[len(s.Ops)-1].SharedGroup != "embedding" {
		t.Fatal("tied embeddings must share a group")
	}
	untied := Build("tiny-untied", 2, 64, 32, 100, false)
	if untied.Ops[len(untied.Ops)-1].Params == 0 {
		t.Fatal("untied lm_head must own parameters")
	}
}

func TestLayerParamArithmetic(t *testing.T) {
	// A transformer block must hold 12·H² parameters.
	s := Build("x", 1, 128, 32, 100, true)
	var block int64
	for _, op := range s.Ops {
		if strings.HasPrefix(op.Name, "layer0/") {
			block += op.Params
		}
	}
	if want := int64(12 * 128 * 128); block != want {
		t.Fatalf("block params = %d, want 12·H² = %d", block, want)
	}
}

func TestFindCutPointsPrefersBlockBoundaries(t *testing.T) {
	s := GPT2XL2B()
	cuts, err := FindCutPoints(s, s.NumLayers-1)
	if err != nil {
		t.Fatal(err)
	}
	block := s.BlockActivationBytes()
	for _, c := range cuts {
		if c.CutBytes > block {
			t.Errorf("cut at %s carries %d bytes > block boundary %d; finder picked a high-activation boundary",
				c.Name, c.CutBytes, block)
		}
	}
}

func TestFindCutPointsErrors(t *testing.T) {
	s := Build("tiny", 2, 64, 32, 100, true)
	if _, err := FindCutPoints(s, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := FindCutPoints(s, len(s.Ops)); err == nil {
		t.Fatal("k >= number of ops must error")
	}
}

func TestFindCutPointsOrderedUnique(t *testing.T) {
	s := GPT2Megatron8B()
	cuts, err := FindCutPoints(s, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 47 {
		t.Fatalf("got %d cuts, want 47", len(cuts))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i].OpIndex <= cuts[i-1].OpIndex {
			t.Fatal("cut-points must be strictly increasing in op order")
		}
	}
}

func TestPartitionCoversModel(t *testing.T) {
	s := GPT2XL2B()
	cuts, err := FindCutPoints(s, 53)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 6, 9, 18, 27} {
		stages, err := Partition(s, cuts, p, true)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(stages) != p {
			t.Fatalf("P=%d: got %d stages", p, len(stages))
		}
		// Stages are contiguous, cover all ops, conserve params/flops.
		next := 0
		var params int64
		var flops float64
		for i, st := range stages {
			if st.Index != i || st.FirstOp != next || st.LastOp < st.FirstOp {
				t.Fatalf("P=%d stage %d malformed: %+v", p, i, st)
			}
			next = st.LastOp + 1
			params += st.Params
			flops += st.FwdFlops
		}
		if next != len(s.Ops) {
			t.Fatalf("P=%d: stages do not cover the model", p)
		}
		if params != s.Params() {
			t.Fatalf("P=%d: params not conserved: %d vs %d", p, params, s.Params())
		}
		if math.Abs(flops-s.FwdFlopsPerExample())/flops > 1e-9 {
			t.Fatalf("P=%d: flops not conserved", p)
		}
		if stages[len(stages)-1].SendBytes != 0 {
			t.Fatalf("P=%d: last stage must send nothing", p)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	s := GPT2Megatron8B()
	cuts, err := FindCutPoints(s, 71)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{6, 9, 18, 24, 36} {
		stages, err := Partition(s, cuts, p, false)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if imb := MaxImbalance(stages); imb > 1.35 {
			t.Errorf("P=%d: imbalance %.3f too high", p, imb)
		}
	}
}

func TestPartitionPackHeadLast(t *testing.T) {
	s := GPT2XL2B()
	cuts, err := FindCutPoints(s, 53)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Partition(s, cuts, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Partition(s, cuts, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	// Packing must give the last stage at least as much compute as the
	// unpacked split does.
	if packed[8].FwdFlops < flat[8].FwdFlops {
		t.Fatalf("packHeadLast gave last stage %.3g flops < unpacked %.3g",
			packed[8].FwdFlops, flat[8].FwdFlops)
	}
}

func TestPartitionErrors(t *testing.T) {
	s := Build("tiny", 2, 64, 32, 100, true)
	cuts, err := FindCutPoints(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(s, cuts, 0, false); err == nil {
		t.Fatal("P=0 must error")
	}
	if _, err := Partition(s, cuts, len(cuts)+2, false); err == nil {
		t.Fatal("P > cuts+1 must error")
	}
}

func TestSharedAcrossStages(t *testing.T) {
	s := GPT2XL2B()
	cuts, err := FindCutPoints(s, 53)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Partition(s, cuts, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := SharedAcrossStages(s, single); len(got) != 0 {
		t.Fatalf("single stage cannot split shared params, got %v", got)
	}
	multi, err := Partition(s, cuts, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	got := SharedAcrossStages(s, multi)
	if len(got) != 1 || got[0] != "embedding" {
		t.Fatalf("tied embedding must be flagged when split, got %v", got)
	}
}

func TestMemoryPipeDreamOOM(t *testing.T) {
	// Table 6: PipeDream's P weight copies OOM on the 8.3B model at
	// P=18 on 16 GB GPUs, while sync systems (1 copy) fit.
	s := GPT2Megatron8B()
	cuts, err := FindCutPoints(s, 71)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Partition(s, cuts, 18, true)
	if err != nil {
		t.Fatal(err)
	}
	gpuMem := int64(16) << 30
	m, nm := 4, 34
	var varunaFits, pipedreamFits = true, true
	for _, st := range stages {
		if !(MemoryModel{Spec: s, Stage: st, WeightCopies: 1}).Fits(m, nm, 18, gpuMem) {
			varunaFits = false
		}
		if !(MemoryModel{Spec: s, Stage: st, WeightCopies: 18}).Fits(m, nm, 18, gpuMem) {
			pipedreamFits = false
		}
	}
	if !varunaFits {
		t.Fatal("Varuna (1 weight copy) must fit 8.3B at P=18 on 16GB")
	}
	if pipedreamFits {
		t.Fatal("PipeDream (P weight copies) must OOM on 8.3B at P=18")
	}
}

func TestMinPipelineDepth(t *testing.T) {
	s := GPT2Megatron8B()
	cuts, err := FindCutPoints(s, 71)
	if err != nil {
		t.Fatal(err)
	}
	gpuMem := int64(16) << 30
	p := MinPipelineDepth(s, cuts, 4, 32, gpuMem, 1)
	if p == 0 {
		t.Fatal("8.3B must fit at some depth on 16GB")
	}
	// 8.3B needs 16·8.3e9 = 133 GB of state alone → at least 9 stages.
	if p < 9 {
		t.Fatalf("min depth %d implausibly small for 8.3B on 16GB", p)
	}
	// And monotonicity: the found depth fits, one less does not.
	stages, err := Partition(s, cuts, p, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stages {
		if !(MemoryModel{Spec: s, Stage: st, WeightCopies: 1}).Fits(4, 32, p, gpuMem) {
			t.Fatalf("reported min depth %d does not fit", p)
		}
	}
}

func TestMemoryOffloadOptimizer(t *testing.T) {
	// §7.1.1: the 200B model runs 102 stages with optimizer state in
	// CPU memory. Offload must reduce the footprint materially.
	s := GPT2TwoHundredB()
	cuts, err := FindCutPoints(s, 101)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Partition(s, cuts, 102, true)
	if err != nil {
		t.Fatal(err)
	}
	st := stages[1]
	on := MemoryModel{Spec: s, Stage: st, WeightCopies: 1}
	off := MemoryModel{Spec: s, Stage: st, WeightCopies: 1, OffloadOptimizer: true}
	if off.BytesNeeded(1, 512, 102) >= on.BytesNeeded(1, 512, 102) {
		t.Fatal("offloading optimizer state must shrink GPU memory")
	}
}

func TestStringFormats(t *testing.T) {
	s := GPT2XL2B()
	str := s.String()
	if !strings.Contains(str, "GPT2-2.5B") || !strings.Contains(str, "54L") {
		t.Fatalf("String() = %q", str)
	}
	if humanParams(2_500_000_000) != "2.5B" || humanParams(340_000_000) != "340M" || humanParams(12) != "12" {
		t.Fatal("humanParams formatting wrong")
	}
	if roundUp(7, 4) != 8 || roundUp(8, 4) != 8 || roundUp(5, 0) != 5 {
		t.Fatal("roundUp wrong")
	}
}

func TestResNetSpec(t *testing.T) {
	// Varuna's generality claim (§7): the cut-point machinery handles
	// convolutional residual networks too.
	r := ResNet152()
	if r.Params() < 20e6 || r.Params() > 200e6 {
		t.Fatalf("ResNet-152 params = %d, implausible", r.Params())
	}
	// CNNs concentrate activation volume early, so usable low-
	// activation boundaries skew late; allow a wider candidate set
	// and accept moderate imbalance.
	cuts, err := FindCutPoints(r, 40)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Partition(r, cuts, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if imb := MaxImbalance(stages); imb > 2.0 {
		t.Fatalf("ResNet partition imbalance %.2f", imb)
	}
	// Cut-points must prefer the small late-stage feature maps over
	// the huge early ones: the mean cut activation should be well
	// below the stem's output.
	stemOut := r.Ops[0].OutBytes
	var sum int64
	for _, c := range cuts {
		sum += c.CutBytes
	}
	if mean := sum / int64(len(cuts)); mean > stemOut {
		t.Fatalf("mean cut activation %d exceeds stem output %d", mean, stemOut)
	}
}

func TestResNetSimulates(t *testing.T) {
	// The whole pipeline stack runs on the CNN spec unchanged.
	r := ResNet152()
	cuts, err := FindCutPoints(r, 24)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Partition(r, cuts, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, st := range stages {
		total += st.Params
	}
	if total != r.Params() {
		t.Fatal("partition must conserve parameters")
	}
}
