package model

// The model zoo mirrors the workloads in the paper's evaluation
// (§7, "Experimental setup"). Layer counts and hidden sizes are the
// published configurations: GPT-2 2.5B has 54 layers × H=1920 at
// sequence length 1024 (§3, Observation 1); 8.3B is Megatron's 72 × 3072;
// 20B is 96 layers (Table 4); 200B is 100 layers × H=12960 (§7.1.1);
// BERT-72 is the single-node GPipe comparison model (Table 5).

// BERTLarge is the 340M-parameter BERT-large at sequence length 512.
func BERTLarge() *Spec { return Build("BERT-large", 24, 1024, 512, 30522, true) }

// BERT72 is the 72-layer, hidden-1024 BERT used for the GPipe
// comparison in Table 5.
func BERT72() *Spec { return Build("BERT-72", 72, 1024, 512, 30522, true) }

// GPT2Small355M is the 355M GPT-2 used in the PipeDream-2BW appendix.
func GPT2Small355M() *Spec { return Build("GPT2-355M", 24, 1024, 512, 50257, true) }

// GPT2XL2B is the 2.5-billion-parameter GPT-2 (54 layers, H=1920).
func GPT2XL2B() *Spec { return Build("GPT2-2.5B", 54, 1920, 1024, 50257, true) }

// GPT2Megatron8B is the Megatron 8.3-billion-parameter GPT-2
// (72 layers, H=3072).
func GPT2Megatron8B() *Spec { return Build("GPT2-8.3B", 72, 3072, 1024, 50257, true) }

// GPT2Twenty19B is the 19.2B variant Megatron can fit with 16-way
// intra-layer partitioning inside one DGX-2 (Table 4).
func GPT2Twenty19B() *Spec { return Build("GPT2-19.2B", 96, 4080, 1024, 50257, true) }

// GPT2Twenty20B is the 20-billion-parameter GPT-2 (96 layers).
func GPT2Twenty20B() *Spec { return Build("GPT2-20B", 96, 4160, 1024, 50257, true) }

// GPT2TwoHundredB is the 200-billion-parameter model: 100 layers with
// hidden size 12960 (§7.1.1).
func GPT2TwoHundredB() *Spec { return Build("GPT2-200B", 100, 12960, 1024, 50257, true) }

// Zoo lists every model in the evaluation, smallest first.
func Zoo() []*Spec {
	return []*Spec{
		BERTLarge(),
		GPT2Small355M(),
		BERT72(),
		GPT2XL2B(),
		GPT2Megatron8B(),
		GPT2Twenty19B(),
		GPT2Twenty20B(),
		GPT2TwoHundredB(),
	}
}
