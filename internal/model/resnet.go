package model

import "fmt"

// The paper notes Varuna "does not make any assumptions about the DNN"
// (§7) and names ResNet-150 among the repetitive-structure models its
// cut-point machinery handles (§5.1). This file builds convolutional
// residual-network specs with the same Op vocabulary the transformer
// builder uses, so cut-point identification, partitioning, memory
// accounting and the simulator all work unchanged.

// ResNetShape describes one stage of a residual network.
type ResNetShape struct {
	// Blocks is the number of residual blocks in the stage.
	Blocks int
	// Channels is the stage's output channel count.
	Channels int
	// Spatial is the feature-map side length within the stage.
	Spatial int
}

// BuildResNet constructs a residual CNN spec for images of the given
// input resolution. Each residual block becomes three ops (two 3×3
// convolutions and the residual add); boundaries inside a block carry
// the full feature map, while stage transitions halve the spatial size
// — the low-activation boundaries the cut-point finder should prefer.
func BuildResNet(name string, shapes []ResNetShape, inputRes, classes int) *Spec {
	s := &Spec{
		Name:      name,
		NumLayers: 0,
		Hidden:    shapes[len(shapes)-1].Channels,
		SeqLen:    inputRes,
		Vocab:     classes,
	}
	actBytes := func(ch, sp int) int64 {
		return int64(ch) * int64(sp) * int64(sp) * BytesPerActivation
	}
	// Stem convolution.
	stemCh := shapes[0].Channels
	stemSp := shapes[0].Spatial
	stemParams := int64(7 * 7 * 3 * stemCh)
	s.Ops = append(s.Ops, Op{
		Name:     "stem",
		Params:   stemParams,
		FwdFlops: 2 * float64(stemParams) * float64(stemSp*stemSp),
		OutBytes: actBytes(stemCh, stemSp),
	})
	prevCh := stemCh
	for si, sh := range shapes {
		for b := 0; b < sh.Blocks; b++ {
			inCh := sh.Channels
			if b == 0 {
				inCh = prevCh
			}
			conv1 := int64(3 * 3 * inCh * sh.Channels)
			conv2 := int64(3 * 3 * sh.Channels * sh.Channels)
			sp2 := float64(sh.Spatial * sh.Spatial)
			s.Ops = append(s.Ops,
				Op{
					Name:     fmt.Sprintf("stage%d/block%d/conv1", si, b),
					Params:   conv1,
					FwdFlops: 2 * float64(conv1) * sp2,
					OutBytes: actBytes(sh.Channels, sh.Spatial),
				},
				Op{
					Name:     fmt.Sprintf("stage%d/block%d/conv2", si, b),
					Params:   conv2,
					FwdFlops: 2 * float64(conv2) * sp2,
					OutBytes: actBytes(sh.Channels, sh.Spatial),
				},
			)
			s.NumLayers++
		}
		prevCh = sh.Channels
	}
	// Classifier head.
	headParams := int64(prevCh * classes)
	s.Ops = append(s.Ops, Op{
		Name:     "classifier",
		Params:   headParams,
		FwdFlops: 2 * float64(headParams),
		OutBytes: int64(classes) * BytesPerActivation,
	})
	return s
}

// ResNet152 approximates the deep residual network the paper mentions:
// 50 residual blocks over four stages at ImageNet resolution.
func ResNet152() *Spec {
	return BuildResNet("ResNet-152", []ResNetShape{
		{Blocks: 3, Channels: 64, Spatial: 56},
		{Blocks: 8, Channels: 128, Spatial: 28},
		{Blocks: 36, Channels: 256, Spatial: 14},
		{Blocks: 3, Channels: 512, Spatial: 7},
	}, 224, 1000)
}
