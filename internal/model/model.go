// Package model describes deep-learning models analytically: their
// operator sequence, parameter counts, per-example compute and
// activation sizes. It implements Varuna's cut-point machinery (§5.1):
// identifying "safe" partition boundaries with low activation size and
// grouping them into pipeline stages at run time, plus detection of
// parameters shared across partition boundaries (§5.2), such as tied
// embedding weights.
//
// The arithmetic follows the paper's own accounting: a transformer
// layer holds 12·H² parameters, forward compute is ≈2 FLOPs per
// parameter per token, backward is twice forward, activations at block
// boundaries are 2·S·H bytes per example in mixed precision, and full
// training state costs 16 bytes per parameter.
package model

import (
	"fmt"
	"math"
)

// BytesPerActivation is the activation element size (fp16).
const BytesPerActivation = 2

// BytesPerParam is the parameter element size held on the wire and in
// the forward pass (fp16).
const BytesPerParam = 2

// BytesPerParamState is the full mixed-precision training state per
// parameter: fp16 param + fp16 grad + fp32 master + fp32 Adam m and v.
const BytesPerParamState = 16

// Op is one profiled operator of the model. Boundaries between ops are
// candidate cut-points; Varuna prefers boundaries where OutBytes is
// small (§5.1).
type Op struct {
	// Name identifies the operator, e.g. "layer17/mlp.fc2".
	Name string
	// Params is the number of trainable parameters owned by the op.
	Params int64
	// FwdFlops is the forward-pass compute per example.
	FwdFlops float64
	// OutBytes is the activation size per example at the boundary
	// after this op.
	OutBytes int64
	// SharedGroup, when non-empty, names a parameter-sharing group:
	// ops in the same group use the same underlying weights (e.g.
	// tied input/output embeddings) and must be synchronized if a
	// partition boundary separates them.
	SharedGroup string
}

// Spec is an analytical model description.
type Spec struct {
	// Name identifies the model, e.g. "GPT2-8.3B".
	Name string
	// NumLayers is the number of repeated transformer blocks.
	NumLayers int
	// Hidden is the model dimension H.
	Hidden int
	// SeqLen is the training sequence length S.
	SeqLen int
	// Vocab is the vocabulary size V.
	Vocab int
	// TiedEmbedding marks input/output embeddings as shared weights.
	TiedEmbedding bool
	// Ops is the profiled operator sequence, including embedding and
	// head ops. Built by Build.
	Ops []Op
}

// Build constructs the operator sequence for a transformer spec. Each
// block is split into four ops so that cut-point selection has real
// work to do: internal boundaries (after QKV and after the MLP
// expansion) carry 3× and 4× the activation volume of block
// boundaries, so a correct finder must skip them.
func Build(name string, layers, hidden, seqLen, vocab int, tied bool) *Spec {
	s := &Spec{
		Name:          name,
		NumLayers:     layers,
		Hidden:        hidden,
		SeqLen:        seqLen,
		Vocab:         vocab,
		TiedEmbedding: tied,
	}
	h := float64(hidden)
	seq := float64(seqLen)
	blockBoundary := int64(seqLen * hidden * BytesPerActivation)

	embedShared := ""
	if tied {
		embedShared = "embedding"
	}
	s.Ops = append(s.Ops, Op{
		Name:        "embedding",
		Params:      int64(vocab) * int64(hidden),
		FwdFlops:    2 * seq * h, // lookup + positional add; negligible
		OutBytes:    blockBoundary,
		SharedGroup: embedShared,
	})
	for l := 0; l < layers; l++ {
		attnParams := int64(4) * int64(hidden) * int64(hidden)
		mlp1Params := int64(4) * int64(hidden) * int64(hidden)
		mlp2Params := int64(4) * int64(hidden) * int64(hidden)
		// QKV projection plus attention score/context matmuls.
		s.Ops = append(s.Ops, Op{
			Name:     fmt.Sprintf("layer%d/attn.qkv", l),
			Params:   attnParams * 3 / 4,
			FwdFlops: 2*seq*h*3*h + 4*seq*seq*h,
			OutBytes: 3 * blockBoundary, // q,k,v live at this point
		})
		s.Ops = append(s.Ops, Op{
			Name:     fmt.Sprintf("layer%d/attn.out", l),
			Params:   attnParams / 4,
			FwdFlops: 2 * seq * h * h,
			OutBytes: blockBoundary,
		})
		s.Ops = append(s.Ops, Op{
			Name:     fmt.Sprintf("layer%d/mlp.fc1", l),
			Params:   mlp1Params,
			FwdFlops: 2 * seq * h * 4 * h,
			OutBytes: 4 * blockBoundary, // expanded MLP intermediate
		})
		s.Ops = append(s.Ops, Op{
			Name:     fmt.Sprintf("layer%d/mlp.fc2", l),
			Params:   mlp2Params,
			FwdFlops: 2 * seq * 4 * h * h,
			OutBytes: blockBoundary,
		})
	}
	// Final LM head: projection back to vocab. With tied embeddings it
	// owns no new parameters but still computes the big matmul.
	headParams := int64(vocab) * int64(hidden)
	if tied {
		headParams = 0
	}
	s.Ops = append(s.Ops, Op{
		Name:        "lm_head",
		Params:      headParams,
		FwdFlops:    2 * seq * h * float64(vocab),
		OutBytes:    int64(seqLen) * int64(vocab) * BytesPerActivation,
		SharedGroup: embedShared,
	})
	return s
}

// Params reports the total trainable parameter count.
func (s *Spec) Params() int64 {
	var n int64
	for _, op := range s.Ops {
		n += op.Params
	}
	return n
}

// FwdFlopsPerExample reports the forward compute of one example.
func (s *Spec) FwdFlopsPerExample() float64 {
	var f float64
	for _, op := range s.Ops {
		f += op.FwdFlops
	}
	return f
}

// TrainFlopsPerExample reports total useful compute per example:
// forward plus backward (2× forward).
func (s *Spec) TrainFlopsPerExample() float64 {
	return 3 * s.FwdFlopsPerExample()
}

// BlockActivationBytes is the activation size per example at a block
// boundary (the paper's "end of layer activations": 2·S·H bytes, e.g.
// 3.75 MB for the 2.5B model).
func (s *Spec) BlockActivationBytes() int64 {
	return int64(s.SeqLen) * int64(s.Hidden) * BytesPerActivation
}

// String summarizes the spec.
func (s *Spec) String() string {
	return fmt.Sprintf("%s(%dL,H=%d,S=%d,%.2fB params)",
		s.Name, s.NumLayers, s.Hidden, s.SeqLen, float64(s.Params())/1e9)
}

// humanParams renders a parameter count like "2.5B" or "340M".
func humanParams(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.0fM", float64(n)/1e6)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// roundUp rounds x up to the nearest multiple of q.
func roundUp(x, q int) int {
	if q <= 0 {
		return x
	}
	return int(math.Ceil(float64(x)/float64(q))) * q
}
