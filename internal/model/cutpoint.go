package model

import (
	"fmt"
	"sort"
)

// CutPoint is one activated partition boundary: the model is cut after
// op index OpIndex. CutBytes is the activation volume that crosses the
// boundary per example.
type CutPoint struct {
	OpIndex  int
	Name     string
	CutBytes int64
}

// FindCutPoints implements Varuna's cut-point identification (§5.1):
// from profiled per-op compute and activation sizes, pick up to k
// boundaries that slice the model into roughly equally heavy sections
// each ending at a low-activation boundary. It returns the boundaries
// in model order.
//
// The algorithm follows the paper: compute is used to shortlist
// candidate end points for each of the k sections, and within each
// shortlist the boundary with the lowest activation size wins, keeping
// the compute-to-communication ratio high.
func FindCutPoints(s *Spec, k int) ([]CutPoint, error) {
	if k < 1 {
		return nil, fmt.Errorf("model: need at least 1 cut-point, got %d", k)
	}
	n := len(s.Ops)
	if k >= n {
		return nil, fmt.Errorf("model: %d cut-points exceed %d op boundaries", k, n-1)
	}
	total := s.FwdFlopsPerExample()
	target := total / float64(k+1)

	// prefix[i] = flops of ops[0..i] inclusive.
	prefix := make([]float64, n)
	var acc float64
	for i, op := range s.Ops {
		acc += op.FwdFlops
		prefix[i] = acc
	}

	// Shortlist the low-activation boundary class: take the smallest
	// activation sizes until at least k candidates are available. For
	// transformers this selects exactly the block boundaries (and the
	// embedding output) while skipping the 3–4× larger QKV and MLP
	// intermediates.
	sizes := make([]int64, 0, n-1)
	for i := 0; i < n-1; i++ {
		sizes = append(sizes, s.Ops[i].OutBytes)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	threshold := sizes[k-1]
	candidates := make([]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		if s.Ops[i].OutBytes <= threshold {
			candidates = append(candidates, i)
		}
	}

	// Greedily bind each ideal split point to the nearest unused
	// candidate, keeping sections compute-balanced.
	used := make(map[int]bool)
	var cuts []CutPoint
	for section := 1; section <= k; section++ {
		want := target * float64(section)
		best := -1
		for _, i := range candidates {
			if used[i] {
				continue
			}
			if best == -1 || absF(prefix[i]-want) < absF(prefix[best]-want) {
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("model: could not place cut-point %d of %d", section, k)
		}
		used[best] = true
		cuts = append(cuts, CutPoint{
			OpIndex:  best,
			Name:     s.Ops[best].Name,
			CutBytes: s.Ops[best].OutBytes,
		})
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].OpIndex < cuts[j].OpIndex })
	return cuts, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Stage is one pipeline partition: a contiguous slice of ops.
type Stage struct {
	// Index is the stage's pipeline position, 0-based.
	Index int
	// FirstOp and LastOp bound the op range, inclusive.
	FirstOp, LastOp int
	// Params is the number of parameters owned by the stage.
	Params int64
	// FwdFlops is the per-example forward compute of the stage.
	FwdFlops float64
	// SendBytes is the activation volume per example the stage sends
	// to its successor (0 for the last stage).
	SendBytes int64
}

// Partition groups the model into p contiguous stages using the
// activated subset of the given cut-points, balancing per-stage forward
// compute. With packHeadLast (the Varuna schedule's last-stage
// no-recompute property, §3.2) the lm_head and final block are biased
// into the last stage.
//
// p-1 of the cut-points are activated; the rest become pass-through,
// exactly as §6 describes ("four equally spaced cut-points are
// activated ... and the rest of the cut-points become pass through").
func Partition(s *Spec, cuts []CutPoint, p int, packHeadLast bool) ([]Stage, error) {
	if p < 1 {
		return nil, fmt.Errorf("model: pipeline depth %d < 1", p)
	}
	if p > len(cuts)+1 {
		return nil, fmt.Errorf("model: pipeline depth %d exceeds %d cut-points + 1", p, len(cuts))
	}
	// Per-stage weight: in steady state every stage spends F+R+B = 4F
	// per micro-batch, but the last stage skips recompute (3F), so with
	// packHeadLast it can absorb 4/3 the compute — which is exactly how
	// Varuna packs the lm_head into the final stage without upsetting
	// pipeline balance (§3.2).
	total := s.FwdFlopsPerExample()
	lastWeight := 1.0
	if packHeadLast && p > 1 {
		lastWeight = 4.0 / 3.0
	}
	weightSum := float64(p-1) + lastWeight
	perUnit := total / weightSum

	prefix := make([]float64, len(s.Ops))
	var acc float64
	for i, op := range s.Ops {
		acc += op.FwdFlops
		prefix[i] = acc
	}

	// Greedily activate the cut-point closest to each ideal split.
	active := make([]int, 0, p-1)
	usedCut := make(map[int]bool)
	for k := 1; k < p; k++ {
		want := perUnit * float64(k)
		best := -1
		for ci, c := range cuts {
			if usedCut[ci] {
				continue
			}
			if best == -1 || absF(prefix[c.OpIndex]-want) < absF(prefix[cuts[best].OpIndex]-want) {
				best = ci
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("model: not enough unused cut-points for depth %d", p)
		}
		usedCut[best] = true
		active = append(active, cuts[best].OpIndex)
	}
	sort.Ints(active)
	for i := 1; i < len(active); i++ {
		if active[i] == active[i-1] {
			return nil, fmt.Errorf("model: duplicate activated cut-point at op %d", active[i])
		}
	}

	stages := make([]Stage, 0, p)
	first := 0
	bounds := append(append([]int{}, active...), len(s.Ops)-1)
	for i, last := range bounds {
		st := Stage{Index: i, FirstOp: first, LastOp: last}
		for j := first; j <= last; j++ {
			st.Params += s.Ops[j].Params
			st.FwdFlops += s.Ops[j].FwdFlops
		}
		if last < len(s.Ops)-1 {
			st.SendBytes = s.Ops[last].OutBytes
		}
		stages = append(stages, st)
		first = last + 1
	}
	return stages, nil
}

// SharedAcrossStages reports the parameter-sharing groups that straddle
// a stage boundary under the given partition. These are the tensors
// Varuna's tracer flags for cross-partition synchronization (§5.2),
// e.g. tied embedding weights when the embedding and lm_head land in
// different stages.
func SharedAcrossStages(s *Spec, stages []Stage) []string {
	groupStage := make(map[string]int)
	split := make(map[string]bool)
	for _, st := range stages {
		for j := st.FirstOp; j <= st.LastOp; j++ {
			g := s.Ops[j].SharedGroup
			if g == "" {
				continue
			}
			if prev, ok := groupStage[g]; ok && prev != st.Index {
				split[g] = true
			}
			groupStage[g] = st.Index
		}
	}
	var out []string
	for g := range split {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// MaxImbalance reports the ratio of the heaviest stage's forward
// compute to the mean. 1.0 is a perfectly balanced pipeline.
func MaxImbalance(stages []Stage) float64 {
	if len(stages) == 0 {
		return 0
	}
	var sum, max float64
	for _, st := range stages {
		sum += st.FwdFlops
		if st.FwdFlops > max {
			max = st.FwdFlops
		}
	}
	return max / (sum / float64(len(stages)))
}
