package model

// GPU memory accounting for a pipeline stage, following §2 ("a model
// with N parameters will need up to 16·N bytes of memory to store
// parameters and optimizer state") and §3.1 (activations are
// recomputed; only each micro-batch's input activation is stashed).

// MemoryModel estimates the device-memory footprint of running one
// pipeline stage.
type MemoryModel struct {
	// Spec is the partitioned model.
	Spec *Spec
	// Stage is the stage being placed.
	Stage Stage
	// WeightCopies is the number of full parameter copies the system
	// keeps: 1 for sync-SGD systems (Varuna, GPipe), 2 for
	// PipeDream-2BW, P (pipeline depth) for PipeDream.
	WeightCopies int
	// OffloadOptimizer moves optimizer state to host memory (used by
	// the 200B run, §7.1.1), leaving only fp16 params + grads on GPU.
	OffloadOptimizer bool
	// StoreAllActivations marks systems without activation
	// checkpointing between flushes (PipeDream): every in-flight
	// micro-batch stashes the stage's full activation set, not just
	// its input.
	StoreAllActivations bool
}

// stashFactor is the number of in-flight micro-batch input activations
// a stage must hold in the worst case under Varuna's schedule: bounded
// by pipeline depth for early stages, but never more than Nm.
func stashFactor(stageIdx, depth, nm int) int {
	inFlight := depth - stageIdx
	if inFlight > nm {
		inFlight = nm
	}
	if inFlight < 1 {
		inFlight = 1
	}
	return inFlight
}

// workingActivationBytes is the peak intra-stage activation memory of
// one micro-batch during forward or recompute: with gradient
// checkpointing only one op's working set plus the stage input live at
// once, so it is bounded by the largest op boundary in the stage.
func (mm MemoryModel) workingActivationBytes(m int) int64 {
	var max int64
	for j := mm.Stage.FirstOp; j <= mm.Stage.LastOp; j++ {
		if b := mm.Spec.Ops[j].OutBytes; b > max {
			max = b
		}
	}
	return max * int64(m)
}

// BytesNeeded estimates the stage's GPU memory demand for micro-batch
// size m with nm micro-batches and pipeline depth p.
func (mm MemoryModel) BytesNeeded(m, nm, p int) int64 {
	params := mm.Stage.Params

	var state int64
	if mm.OffloadOptimizer {
		// fp16 params + fp16 grads resident; fp32 state in host RAM.
		state = params * 4
	} else {
		state = params * BytesPerParamState
	}
	if mm.WeightCopies > 1 {
		// Extra full fp16 weight copies (PipeDream keeps P, 2BW keeps 2).
		state += params * BytesPerParam * int64(mm.WeightCopies-1)
	}

	// Stashed activations for in-flight micro-batches: just the stage
	// input under gradient checkpointing, or the full per-op
	// activation set for systems that never recompute (PipeDream).
	perMicro := mm.Spec.BlockActivationBytes()
	if mm.StoreAllActivations {
		perMicro = 0
		for j := mm.Stage.FirstOp; j <= mm.Stage.LastOp; j++ {
			perMicro += mm.Spec.Ops[j].OutBytes
		}
	}
	stash := perMicro * int64(m) * int64(stashFactor(mm.Stage.Index, p, nm))

	// Working set of the pass currently executing (2x: one being
	// computed, one being received/sent).
	working := 2 * mm.workingActivationBytes(m)

	// CUDA context, framework overhead, fragmentation reserve.
	const overhead = int64(1) << 30

	return state + stash + working + overhead
}

// Fits reports whether the stage fits in gpuMem bytes.
func (mm MemoryModel) Fits(m, nm, p int, gpuMem int64) bool {
	return mm.BytesNeeded(m, nm, p) <= gpuMem
}

// MinPipelineDepth finds the smallest pipeline depth p (up to maxP)
// such that every stage of a balanced partition fits in gpuMem at
// micro-batch size m. It returns 0 if no depth fits.
func MinPipelineDepth(s *Spec, cuts []CutPoint, m, nm int, gpuMem int64, weightCopies int) int {
	maxP := len(cuts) + 1
	for p := 1; p <= maxP; p++ {
		stages, err := Partition(s, cuts, p, true)
		if err != nil {
			continue
		}
		ok := true
		for _, st := range stages {
			mm := MemoryModel{Spec: s, Stage: st, WeightCopies: weightCopiesFor(weightCopies, p)}
			if !mm.Fits(m, nm, p, gpuMem) {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

// weightCopiesFor resolves the special value -1 meaning "P copies"
// (PipeDream's scheme) into the concrete count for depth p.
func weightCopiesFor(wc, p int) int {
	if wc == -1 {
		return p
	}
	if wc < 1 {
		return 1
	}
	return wc
}
