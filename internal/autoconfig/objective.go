package autoconfig

import (
	"fmt"
	"math"

	"repro/internal/restart"
	"repro/internal/simtime"
)

// ObjectiveKind selects what a morph decision optimizes.
type ObjectiveKind int

const (
	// ObjMaxThroughput maximizes examples per second — the paper's
	// §4.4 decision rule and the default (zero value), preserving
	// today's behavior exactly.
	ObjMaxThroughput ObjectiveKind = iota
	// ObjMinDollarPerExample minimizes spot dollars per training
	// example: idle capacity is released, and marginal replicas that
	// no longer earn their keep at the current price are shed — the
	// fleet shrinks through price spikes and regrows when the price
	// reverts.
	ObjMinDollarPerExample
	// ObjDeadline finishes a target example count by a wall-clock
	// deadline as cheaply as possible: the cheapest configuration
	// whose throughput still meets the required rate wins; when the
	// job is ahead of schedule it saves dollars, when behind it runs
	// flat out.
	ObjDeadline
)

// String names the kind.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjMaxThroughput:
		return "max-throughput"
	case ObjMinDollarPerExample:
		return "min-dollar-per-example"
	case ObjDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// Objective is the optimization target of the cost-aware decision
// stack. The zero value is ObjMaxThroughput with no deadline —
// bit-identical to the pre-dollar decision rule.
type Objective struct {
	// Kind selects the target.
	Kind ObjectiveKind
	// DeadlineAt and TargetExamples parameterize ObjDeadline: process
	// TargetExamples examples by DeadlineAt.
	DeadlineAt     simtime.Time
	TargetExamples float64
}

// Shrinks reports whether the objective voluntarily releases fleet
// capacity the chosen configuration does not use. Throughput
// maximization never does (idle VMs are free under its accounting);
// the dollar objectives always do (idle VMs cost money and buy
// nothing).
func (o Objective) Shrinks() bool { return o.Kind != ObjMaxThroughput }

// RetainGPUs is how much fleet a shrink objective keeps when the
// chosen configuration uses choiceGPUs: exactly that for
// min-$/example, but 1.5× while a deadline is live. Released spot
// capacity is a one-way door — the provider may never grant it back
// — so a deadline objective holds schedule insurance: slack that
// absorbs preemptions and lets the configuration scale up when the
// required rate rises, paid for as idle spend while it waits. Once
// the target is met the insurance is dropped and min-dollar
// economics take over.
func (o Objective) RetainGPUs(choiceGPUs int, ec Econ) int {
	if o.Kind == ObjDeadline && requiredRate(o, ec) > 0 {
		return choiceGPUs + (choiceGPUs+1)/2
	}
	return choiceGPUs
}

// Validate sanity-checks the objective.
func (o Objective) Validate() error {
	switch o.Kind {
	case ObjMaxThroughput, ObjMinDollarPerExample:
		return nil
	case ObjDeadline:
		if o.DeadlineAt <= 0 || o.TargetExamples <= 0 {
			return fmt.Errorf("autoconfig: deadline objective needs DeadlineAt and TargetExamples")
		}
		return nil
	default:
		return fmt.Errorf("autoconfig: unknown objective kind %d", int(o.Kind))
	}
}

// Econ is the economic context of one decision: where the spot price
// is now, where it sits in the long run, and how far the job has
// progressed (for deadline objectives). All fields are observations,
// not knobs — the manager fills them from the price curve and its own
// counters at each fleet event.
type Econ struct {
	// PerGPUHour is the spot price at decision time.
	PerGPUHour float64
	// MeanPerGPUHour is the curve's long-run mean — the reference an
	// example produced *later* would be priced at. The ratio
	// PerGPUHour/MeanPerGPUHour is what makes marginal replicas
	// uneconomical during a spike.
	MeanPerGPUHour float64
	// Now is the decision instant.
	Now simtime.Time
	// DoneExamples is the job's cumulative progress.
	DoneExamples float64
	// PreemptEvery is the observed gap between preemption events
	// (spot.GapEstimator.ExpectedOf(Preempt)); zero when none have
	// been observed. Together with CheckpointEvery it discounts each
	// candidate's nameplate throughput by expected rollback loss —
	// slow configurations stretch the checkpoint interval, so a
	// preemption costs them disproportionately more work.
	PreemptEvery simtime.Duration
	// CheckpointEvery is the manager's checkpoint cadence in
	// mini-batches (zero disables the rollback discount).
	CheckpointEvery int
}

// EffectiveExPerSec discounts a candidate's nameplate throughput by
// the rollback work an expected preemption cadence destroys: on
// average half a checkpoint interval (CheckpointEvery/2 mini-batches
// of Est each) is lost per preemption window of PreemptEvery. A
// 230 ex/s full-fleet configuration loses ~10% to a 20-minute
// preemption cadence; a 30 ex/s shrunken one loses half — the
// fragility that makes "cheap and slow" a false economy on a bursty
// fleet. Nameplate when no hazard has been observed.
func (ec Econ) EffectiveExPerSec(c Choice) float64 {
	ex := c.TotalExPerSec()
	if ec.PreemptEvery <= 0 || ec.CheckpointEvery <= 0 || ex <= 0 || c.Est <= 0 {
		return ex
	}
	loss := float64(c.Est) * float64(ec.CheckpointEvery) / 2
	window := float64(ec.PreemptEvery)
	return ex * window / (window + loss)
}

// marginalSlack tolerates marginal capacity up to this factor above
// the job's best achievable mean-price $/example before the
// min-dollar objective sheds it. The 2.5B ladder on 150 GPUs puts
// the marginal $-per-extra-example of growing from the GPU-efficient
// core to the (quantized) full fleet at ~1.2–1.6× the baseline, so
// 1.5 keeps most of the fleet at or below mean price while a
// moderate spike (≥ ~1.3×) walks it back down — shrink is a response
// to price excursions, not a permanent opt-out of capacity.
const marginalSlack = 1.5

// shrinkLevels are the fleet fractions whose sweeps seed the shrink
// candidate set (see candidatesFor).
var shrinkLevels = [...]struct{ num, den int }{{1, 1}, {3, 4}, {1, 2}, {1, 4}}

// candidatesFor assembles the candidate set of a dollar-aware
// decision. A single Sweep(g) mostly yields shapes that use nearly
// the whole fleet (for every D the deepest feasible P dominates at
// that D), so it offers little room to *shrink*; sweeping a few
// smaller fleet levels too gives the objective real exit points when
// the price makes capacity uneconomical. Levels that don't fit the
// model are skipped; duplicates (the same P×D reappears across
// levels) keep their first, identical evaluation. All sweeps run
// through the Planner's lifetime caches, so the added levels are
// cheap arithmetic on a warm planner.
func (pl *Planner) candidatesFor(g int) ([]Choice, error) {
	seen := make(map[[2]int]bool)
	var out []Choice
	var firstErr error
	for _, lv := range shrinkLevels {
		lg := g * lv.num / lv.den
		if lg < 1 {
			continue
		}
		cands, err := pl.Sweep(lg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, c := range cands {
			key := [2]int{c.P, c.D}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		if firstErr == nil {
			// g = 0 skips every shrink level before a sweep can even
			// run: surface the same dead-fleet error Sweep(0) would.
			firstErr = fmt.Errorf("autoconfig: no GPUs")
		}
		return nil, firstErr
	}
	// Deterministic walk order: ascending throughput, ties broken
	// toward fewer GPUs then shallower pipelines.
	sortChoices(out)
	return out, nil
}

// sortChoices orders candidates by ascending throughput (GPUs, then
// P, as tiebreaks) — the order the marginal-economics walk climbs.
func sortChoices(cs []Choice) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessChoice(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func lessChoice(a, b Choice) bool {
	ae, be := a.TotalExPerSec(), b.TotalExPerSec()
	if ae != be {
		return ae < be
	}
	if a.GPUsUsed != b.GPUsUsed {
		return a.GPUsUsed < b.GPUsUsed
	}
	return a.P < b.P
}

// minDollarChoice selects the configuration minimizing dollars per
// example at the current price, SWARM-style marginal economics: start
// from the most GPU-efficient shape (the best $/example regardless of
// price level, since a uniform price scales every candidate equally),
// then keep adding capacity while each marginal step's
// $-per-additional-example stays within marginalSlack of the job's
// best achievable mean-price $/example. At mean price the full fleet
// passes; when the price spikes, the same marginal replicas price
// above the mean-price baseline and the choice walks back down — the
// shrink the objective exists for.
// baselineCost reports the job's best achievable mean-price
// $/example across the candidate set (+Inf when nothing produces),
// and the index achieving it. This is the reference the marginal
// admission rule and the hold-vs-morph surplus valuation both price
// against — one yardstick, so selection and switching decisions
// cannot contradict each other.
func baselineCost(cands []Choice, ec Econ) (int, float64) {
	meanRate := ec.MeanPerGPUHour
	if meanRate <= 0 {
		meanRate = ec.PerGPUHour
	}
	best, cost := -1, math.Inf(1)
	for i, c := range cands {
		ex := ec.EffectiveExPerSec(c)
		if ex <= 0 {
			continue
		}
		sigma := meanRate * float64(c.GPUsUsed) / (3600 * ex)
		if best < 0 || sigma < cost {
			best, cost = i, sigma
		}
	}
	return best, cost
}

func minDollarChoice(cands []Choice, ec Econ) Choice {
	meanRate := ec.MeanPerGPUHour
	if meanRate <= 0 {
		meanRate = ec.PerGPUHour
	}
	rate := ec.PerGPUHour
	if rate <= 0 {
		rate = meanRate
	}
	// Most GPU-efficient candidate: argmin GPUs/ex (price-invariant).
	start, baseline := baselineCost(cands, ec)
	if start < 0 {
		return cands[len(cands)-1]
	}
	chosen := cands[start]
	for _, c := range cands {
		ex, chEx := ec.EffectiveExPerSec(c), ec.EffectiveExPerSec(chosen)
		if ex <= chEx {
			continue
		}
		if c.GPUsUsed <= chosen.GPUsUsed {
			chosen = c // more throughput from no more GPUs: dominates
			continue
		}
		marginal := rate * float64(c.GPUsUsed-chosen.GPUsUsed) / (3600 * (ex - chEx))
		if marginal <= marginalSlack*baseline {
			chosen = c
		}
	}
	return chosen
}

// requiredRate reports the throughput (examples/s) a deadline
// objective needs from here on, with a 50% safety margin. The
// margin covers everything the per-candidate rollback discount
// cannot see — reconfiguration downtime, straggler exclusions, the
// cold ramp while the fleet assembles, and holds that keep a slower
// shape running — which together routinely eat a quarter of
// nameplate pace on a bursty fleet; a deadline missed narrowly is
// still missed. Zero when the target is already met or no deadline
// applies.
func requiredRate(obj Objective, ec Econ) float64 {
	if obj.Kind != ObjDeadline {
		return 0
	}
	remaining := obj.TargetExamples - ec.DoneExamples
	left := obj.DeadlineAt.Sub(ec.Now).Seconds()
	if remaining <= 0 || left <= 0 {
		return 0
	}
	return 1.5 * remaining / left
}

// deadlineHeadroom is the throughput buffer a deadline selection
// keeps over the required rate. Spot reality eats into nameplate
// throughput — preemption rollbacks, reconfiguration downtime, and
// the one-way nature of released capacity (a replayed trace cannot
// re-grant a VM the job gave back) — so running at exactly the
// required rate converts every hiccup into schedule slip that
// released VMs can no longer absorb. 2× keeps the selection cheap
// when comfortably ahead and snaps back to flat-out the moment the
// margin thins.
const deadlineHeadroom = 2.0

// deadlineChoice picks the cheapest configuration whose throughput
// clears the required rate with deadlineHeadroom to spare: the
// fewest paid GPUs among candidates fast enough (ties to the higher
// throughput). With no candidate that comfortable — behind schedule,
// or a deadline near the wire — it runs flat out. Once the target is
// met (required zero) it defers to min-dollar selection: bonus
// examples should be cheap ones.
func deadlineChoice(cands []Choice, obj Objective, ec Econ) Choice {
	required := requiredRate(obj, ec)
	if required <= 0 {
		return minDollarChoice(cands, ec)
	}
	need := deadlineHeadroom * required
	best := -1
	for i, c := range cands {
		if ec.EffectiveExPerSec(c) < need {
			continue
		}
		if best < 0 ||
			c.GPUsUsed < cands[best].GPUsUsed ||
			(c.GPUsUsed == cands[best].GPUsUsed && c.TotalExPerSec() > cands[best].TotalExPerSec()) {
			best = i
		}
	}
	if best >= 0 {
		return cands[best]
	}
	// No candidate clears the margin: best effort, maximum effective
	// throughput.
	top := cands[0]
	for _, c := range cands[1:] {
		if ec.EffectiveExPerSec(c) > ec.EffectiveExPerSec(top) {
			top = c
		}
	}
	return top
}

// BestFor is the objective-aware Best: the target configuration for g
// GPUs under obj and the economic context ec. ObjMaxThroughput
// delegates to the memoized Best(g) (identical decisions, identical
// caching); the dollar objectives select over the shrink-augmented
// candidate set and are not memoized per fleet size — the right
// answer moves with the price — but every underlying evaluation still
// comes from the lifetime cost cache.
func (pl *Planner) BestFor(g int, obj Objective, ec Econ) (Choice, error) {
	c, _, err := pl.bestForEcon(g, obj, ec)
	return c, err
}

// bestForEcon is BestFor plus the candidate set's baseline mean-price
// $/example — the example valuation the hold-vs-morph surplus
// comparison prices against (zero for max throughput, which doesn't
// trade in dollars).
func (pl *Planner) bestForEcon(g int, obj Objective, ec Econ) (Choice, float64, error) {
	switch obj.Kind {
	case ObjMinDollarPerExample, ObjDeadline:
	default:
		c, err := pl.Best(g)
		return c, 0, err
	}
	cands, err := pl.candidatesFor(g)
	if err != nil {
		return Choice{}, 0, err
	}
	_, baseline := baselineCost(cands, ec)
	if math.IsInf(baseline, 1) {
		baseline = 0
	}
	if obj.Kind == ObjDeadline {
		return deadlineChoice(cands, obj, ec), baseline, nil
	}
	return minDollarChoice(cands, ec), baseline, nil
}

// BestOrHoldObjective is the objective-aware BestOrHold.
// ObjMaxThroughput reproduces BestOrHold exactly. The dollar
// objectives target BestFor's choice and settle morph-vs-hold by
// dollar *surplus* over the expected stable window, valuing each
// example at marginalSlack × the job's baseline mean-price
// $/example — the same yardstick BestFor's marginal admission rule
// uses, so the switch decision cannot contradict the selection (raw
// $/example comparison would ratchet: a grown fleet always costs
// more per example than the efficient core, so the fleet would
// shrink once and never re-grow when the price reverts). Morphing
// pays the downtime at the current price for the union fleet (old
// and new capacity overlap while state moves), then accrues the
// target's surplus over the preempt-discounted remainder; holding
// accrues the current configuration's surplus with no downtime. A
// deadline objective additionally forces the morph when the held
// configuration is too slow for the remaining time but the target is
// fast enough.
func (pl *Planner) BestOrHoldObjective(g int, cur Choice, running bool, rm *restart.Model, hz Horizon, dirty bool, obj Objective, ec Econ) (MorphDecision, error) {
	if obj.Kind == ObjMaxThroughput {
		return pl.BestOrHold(g, cur, running, rm, hz, dirty)
	}
	best, baseline, err := pl.bestForEcon(g, obj, ec)
	if err != nil {
		return MorphDecision{}, err
	}
	dec := MorphDecision{Choice: best, Horizon: hz.Until, PreemptNext: hz.PreemptNext}
	if !running || rm == nil {
		dec.Morph = true
		if rm != nil {
			dec.Costs = rm.Price(restart.Assignment{}, assignmentOf(best), false)
		}
		return dec, nil
	}
	dec.Costs = rm.Price(assignmentOf(cur), assignmentOf(best), dirty)
	dec.GainPerSec = best.TotalExPerSec() - cur.TotalExPerSec()
	if cur.GPUsUsed > g {
		dec.Morph = true
		return dec, nil
	}
	if best.P == cur.P && best.D == cur.D {
		return dec, nil
	}
	if required := requiredRate(obj, ec); required > 0 &&
		ec.EffectiveExPerSec(cur) < required && ec.EffectiveExPerSec(best) >= required {
		// Holding forfeits the deadline; the target keeps it.
		dec.Morph = true
		return dec, nil
	}
	rate := ec.PerGPUHour / 3600 // $/GPU·s
	down := dec.Costs.Total()
	usable := hz.Until - down
	if usable < 0 {
		usable = 0
	}
	usable = hz.discounted(usable)
	exMorph := ec.EffectiveExPerSec(best) * usable.Seconds()
	exHold := ec.EffectiveExPerSec(cur) * hz.Until.Seconds()
	union := cur.GPUsUsed
	if best.GPUsUsed > union {
		union = best.GPUsUsed
	}
	morphDollars := rate * (float64(union)*down.Seconds() + float64(best.GPUsUsed)*usable.Seconds())
	holdDollars := rate * float64(cur.GPUsUsed) * hz.Until.Seconds()
	if exMorph > 0 {
		dec.MorphCostPerEx = morphDollars / exMorph
	}
	if exHold > 0 {
		dec.HoldCostPerEx = holdDollars / exHold
	}
	value := marginalSlack * baseline
	dec.Morph = value*exMorph-morphDollars > value*exHold-holdDollars
	return dec, nil
}
