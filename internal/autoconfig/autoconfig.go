// Package autoconfig implements Varuna's job morphing (§4.2–§4.4): on
// every change in available GPUs it re-derives the best-performing
// (P, D, m, Nm) configuration by sweeping pipeline depths through the
// parametrized simulator, while keeping the user's global mini-batch
// size M_total fixed — the correctness-preserving property that lets a
// running job reshape without touching hyper-parameters. Gradient
// accumulation absorbs the slack: when fewer GPUs are available the
// per-GPU micro-batch count Nm grows instead of the learning dynamics
// changing.
package autoconfig

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/calibrate"
	"repro/internal/gen2"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Inputs is everything morphing needs that does not change with G.
type Inputs struct {
	// Spec is the model being trained.
	Spec *model.Spec
	// Cuts are the identified cut-points (§5.1).
	Cuts []model.CutPoint
	// Params is the one-time scale-invariant calibration (§4.3).
	Params *calibrate.Params
	// GPUMem is the per-device memory.
	GPUMem int64
	// MTotal is the user's global mini-batch size, invariant across
	// morphs (§4.2).
	MTotal int
	// GPUsPerNode drives placement: which stage boundaries cross
	// nodes and how many allreduces share a NIC.
	GPUsPerNode int
}

// Choice is one evaluated configuration — a point of the §4.4 sweep,
// written the way the paper writes Table 3 rows (P×D with its
// micro-batch choice and predicted mini-batch time).
type Choice struct {
	// P is pipeline depth, D data-parallel width.
	P, D int
	// M is the micro-batch size, Nm the micro-batches per replica.
	M, Nm int
	// Stages is the cut-point grouping for this depth.
	Stages []model.Stage
	// Est is the simulator's predicted mini-batch time.
	Est simtime.Duration
	// GPUsUsed is P·D (≤ G when G is not a multiple of P).
	GPUsUsed int
	// Examples is the effective mini-batch (m·Nm·D), kept as close to
	// MTotal as divisibility allows.
	Examples int
}

// TotalExPerSec is the configuration's whole-job throughput.
func (c Choice) TotalExPerSec() float64 {
	if c.Est <= 0 {
		return 0
	}
	return float64(c.Examples) / c.Est.Seconds()
}

// ExPerSecPerGPU normalizes throughput by GPUs used.
func (c Choice) ExPerSecPerGPU() float64 {
	if c.GPUsUsed == 0 {
		return 0
	}
	return c.TotalExPerSec() / float64(c.GPUsUsed)
}

// String renders the configuration the way the paper writes it (P×D).
func (c Choice) String() string {
	return fmt.Sprintf("%dx%d (m=%d, Nm=%d, est %v)", c.P, c.D, c.M, c.Nm, c.Est)
}

// GradAccum computes the micro-batch count that preserves M_total for a
// given micro-batch size and data-parallel width: Nm = ⌈M/(m·D)⌉. This
// is the §4.2 accumulation rule — shrinking resources grow Nm, never
// the hyper-parameters.
func GradAccum(mTotal, m, d int) int {
	nm := (mTotal + m*d - 1) / (m * d)
	if nm < 1 {
		nm = 1
	}
	return nm
}

// interFlags marks the stage boundaries that cross nodes when p stages
// are packed onto nodes of gpusPerNode GPUs.
func interFlags(p, gpusPerNode int) []bool {
	flags := make([]bool, p)
	for i := 0; i < p-1; i++ {
		flags[i] = gpusPerNode <= 1 || (i+1)%gpusPerNode == 0
	}
	return flags
}

// costCache memoizes the per-candidate simulation inputs and outputs
// keyed on (spec, p, m, d): the calibrate.Params.StageCosts slice and
// the anchor-simulation makespan estimate at the Nm that GradAccum
// derives for the key. Both are deterministic in the key (stages and
// boundary flags are functions of p; the estimate runs the simulator
// on mean parameters with no jitter), so workers can safely share
// cached values — the simulator never mutates cost slices.
//
// Within a single sweep the candidate generation dedupes by p and
// tries each m at most once per candidate, so every key is distinct
// and the cache never hits; the payoff is cross-sweep. A Planner keeps
// one costCache alive for the lifetime of a job, and the repeated
// sweeps of a Figure-8 morphing timeline revisit the same keys
// constantly: fleet sizes recur, and nearby fleet sizes share the
// deepest feasible depths.
//
// On a months-long job the key space grows without bound (one entry
// per unique (p, m, d)), so the cache is generation-bounded behind a
// gen2.Map: recently-touched keys always survive — segmented-LRU
// behavior without per-entry bookkeeping — and since every cached
// value is deterministic in its key, eviction can only cost
// recomputation, never change results.
type costCache struct {
	mu sync.Mutex
	m  *gen2.Map[costKey, *costEntry]

	hits, misses             atomic.Uint64
	costComputes, simAnchors atomic.Uint64
}

// costKey scopes entries to the model being planned for: a Planner
// whose job switches specs (or a cache accidentally shared across
// jobs) can never serve one model's partition costs to another.
type costKey struct {
	spec    *model.Spec
	p, m, d int
}

// costEntry is one cached computation. nm records the micro-batch
// count the estimate was simulated at; a lookup with a different nm
// (possible only if M_total changed without an invalidation) reuses
// the costs but re-runs the estimate.
type costEntry struct {
	costs []sim.StageCosts
	nm    int
	est   simtime.Duration
}

func newCostCache(sizeHint int) *costCache { return newCostCacheCap(sizeHint, 0) }

// newCostCacheCap builds a cache bounded to cap keys per generation
// (cap <= 0 keeps the unbounded per-sweep behavior).
func newCostCacheCap(sizeHint, cap int) *costCache {
	return &costCache{m: gen2.New[costKey, *costEntry](cap, sizeHint)}
}

// lookup finds a key in either generation, promoting previous-generation
// hits into the current one.
func (c *costCache) lookup(key costKey) (*costEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Get(key)
}

// store inserts a freshly computed entry.
func (c *costCache) store(key costKey, e *costEntry) {
	c.mu.Lock()
	c.m.Put(key, e)
	c.mu.Unlock()
}

// evictions reports generation rotations (each drops the oldest
// generation's keys).
func (c *costCache) evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Rotations()
}

// snapshot returns every live entry (both generations, current wins),
// for state export.
func (c *costCache) snapshot() map[costKey]*costEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[costKey]*costEntry, c.m.Len())
	c.m.Each(func(k costKey, e *costEntry) { out[k] = e })
	return out
}

// estimate returns the simulated mini-batch time for one fully
// specified candidate, serving both the StageCosts assembly and the
// anchor simulations from the cache when the key was seen before. A
// nil receiver computes without caching (the Evaluate fast path).
func (c *costCache) estimate(in Inputs, stages []model.Stage, p, m, d, nm int) (simtime.Duration, error) {
	if c == nil {
		costs, err := in.Params.StageCosts(in.Spec, stages, m, d, interFlags(p, in.GPUsPerNode))
		if err != nil {
			return 0, err
		}
		return sim.EstimateMakespan(sim.Config{
			Depth:  p,
			Micros: nm,
			Policy: schedule.Varuna,
			Costs:  costs,
		})
	}
	key := costKey{spec: in.Spec, p: p, m: m, d: d}
	e, ok := c.lookup(key)
	if ok && e.nm == nm {
		c.hits.Add(1)
		return e.est, nil
	}
	// Miss (or an Nm mismatch): compute what is missing outside the
	// lock. Two workers racing on the same fresh key duplicate the
	// work but store identical values, which keeps the hot path free
	// of per-key latches.
	c.misses.Add(1)
	var costs []sim.StageCosts
	if ok {
		costs = e.costs
	} else {
		var err error
		costs, err = in.Params.StageCosts(in.Spec, stages, m, d, interFlags(p, in.GPUsPerNode))
		if err != nil {
			return 0, err
		}
		c.costComputes.Add(1)
	}
	est, err := sim.EstimateMakespan(sim.Config{
		Depth:  p,
		Micros: nm,
		Policy: schedule.Varuna,
		Costs:  costs,
	})
	if err != nil {
		return 0, err
	}
	c.simAnchors.Add(1)
	c.store(key, &costEntry{costs: costs, nm: nm, est: est})
	return est, nil
}

// Evaluate builds and simulates a single (P, D) candidate, choosing the
// micro-batch size jointly: m trades kernel efficiency (bigger is
// better, §4.1) against pipeline efficiency (bigger m means fewer
// micro-batches and more bubble — constraint 3 of Figure 2). Every
// memory-feasible profiled size up to the kernel sweet spot is
// simulated and the fastest wins.
func Evaluate(in Inputs, p, d int) (Choice, error) {
	return evaluate(in, p, d, nil)
}

func evaluate(in Inputs, p, d int, cache *costCache) (Choice, error) {
	if p < 1 || d < 1 {
		return Choice{}, fmt.Errorf("autoconfig: bad shape %dx%d", p, d)
	}
	stages, err := model.Partition(in.Spec, in.Cuts, p, true)
	if err != nil {
		return Choice{}, err
	}
	sweet := in.Params.PickMicroSize(0.05)
	candidates := pruneMicroSizes(in, stages, p, d, sweet)
	var best Choice
	found := false
	for _, m := range candidates {
		nm := GradAccum(in.MTotal, m, d)
		if !fits(in, stages, m, nm, p) {
			continue
		}
		est, err := cache.estimate(in, stages, p, m, d, nm)
		if err != nil {
			return Choice{}, err
		}
		c := Choice{
			P: p, D: d, M: m, Nm: nm,
			Stages:   stages,
			Est:      est,
			GPUsUsed: p * d,
			Examples: m * nm * d,
		}
		if !found || c.TotalExPerSec() > best.TotalExPerSec() {
			best = c
			found = true
		}
	}
	if !found {
		return Choice{}, fmt.Errorf("autoconfig: %s does not fit at P=%d on this GPU memory", in.Spec.Name, p)
	}
	return best, nil
}

// pruneMicroSizes ranks the memory-feasible profiled micro-batch sizes
// by an analytic throughput score — kernel time per example times the
// fill/drain bubble factor — and keeps the top three for simulation.
// The score orders candidates well enough that simulating the rest is
// wasted work during a morph, where decision latency matters (§7.2).
func pruneMicroSizes(in Inputs, stages []model.Stage, p, d, sweet int) []int {
	type scored struct {
		m     int
		score float64
	}
	var cands []scored
	for _, m := range in.Params.MicroSizes {
		if m > sweet {
			break
		}
		nm := GradAccum(in.MTotal, m, d)
		if !fits(in, stages, m, nm, p) {
			continue
		}
		perExample := in.Params.PerExampleFwdAt(m)
		bubble := float64(nm) / float64(nm+p-1)
		cands = append(cands, scored{m: m, score: bubble / perExample})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if len(cands) > 3 {
		cands = cands[:3]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.m
	}
	sort.Ints(out)
	return out
}

// fits checks every stage of the partition against GPU memory.
func fits(in Inputs, stages []model.Stage, m, nm, p int) bool {
	for _, st := range stages {
		mm := model.MemoryModel{Spec: in.Spec, Stage: st, WeightCopies: 1}
		if !mm.Fits(m, nm, p, in.GPUMem) {
			return false
		}
	}
	return true
}

// Sweep evaluates every feasible pipeline depth for g GPUs, in O(G)
// total simulator invocations (§4.4): P runs from the smallest depth
// where the model fits up to the number of cut-points, one balanced
// cut-point assignment per depth. Candidates are evaluated on a
// bounded worker pool (GOMAXPROCS workers) — decision latency during a
// morph is wasted cluster time (§7.2) — and the result is merged in
// deterministic candidate order, so the output is bit-identical to a
// serial sweep.
func Sweep(in Inputs, g int) ([]Choice, error) {
	return sweepWorkers(in, g, runtime.GOMAXPROCS(0), nil)
}

// sweepWorkers is Sweep with an explicit worker count and an optional
// long-lived cache (nil builds a per-sweep one); workers <= 1
// evaluates serially. Tests compare the paths for identity.
func sweepWorkers(in Inputs, g, workers int, cache *costCache) ([]Choice, error) {
	if g < 1 {
		return nil, fmt.Errorf("autoconfig: no GPUs")
	}
	maxP := len(in.Cuts) + 1
	if maxP > g {
		maxP = g
	}
	// For a fixed data-parallel width D the deepest pipeline that the
	// cut-points allow, P = min(⌊G/D⌋, maxP), strictly dominates
	// shallower ones at the same D: same allreduce cost, fewer idle
	// GPUs. Sweeping the distinct D values therefore covers the
	// configuration space in O(G/P_min) simulator calls instead of
	// O(maxP) — the §4.4 exploration bound.
	type cand struct{ p, d int }
	var cands []cand
	seen := make(map[int]bool)
	for d := 1; d <= g; d++ {
		p := g / d
		if p > maxP {
			p = maxP
		}
		if p < 1 {
			break
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		cands = append(cands, cand{p: p, d: g / p})
	}

	choices := make([]Choice, len(cands))
	errs := make([]error, len(cands))
	if cache == nil {
		cache = newCostCache(len(cands))
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, c := range cands {
			choices[i], errs[i] = evaluate(in, c.p, c.d, cache)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(cands) {
						return
					}
					choices[i], errs[i] = evaluate(in, cands[i].p, cands[i].d, cache)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic merge: candidate order is ascending D, exactly the
	// order the serial loop appended in.
	var out []Choice
	for i := range cands {
		if errs[i] != nil {
			continue // does not fit at this depth; deeper may
		}
		out = append(out, choices[i])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("autoconfig: %s does not fit on %d×%s GPUs", in.Spec.Name, g, humanBytes(in.GPUMem))
	}
	return out, nil
}

// Best picks the highest-total-throughput configuration for g GPUs —
// the decision rule the §4.6 manager applies after every fleet change.
func Best(in Inputs, g int) (Choice, error) {
	return best(g, func(g int) ([]Choice, error) { return Sweep(in, g) })
}

// best reduces a sweep to its top-throughput choice; the sweep
// function seam lets Planner.Best route through the lifetime caches.
func best(g int, sweep func(int) ([]Choice, error)) (Choice, error) {
	out, err := sweep(g)
	if err != nil {
		return Choice{}, err
	}
	top := out[0]
	for _, c := range out[1:] {
		if c.TotalExPerSec() > top.TotalExPerSec() {
			top = c
		}
	}
	return top, nil
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
