package autoconfig

import (
	"testing"

	"repro/internal/calibrate"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/testbed"
)

func benchInputs(b *testing.B) Inputs {
	b.Helper()
	spec := model.GPT2Megatron8B()
	cluster := hw.SpotCluster(hw.NC6v3, 300)
	tb := testbed.New(cluster, 21)
	params, err := calibrate.Run(spec, tb, calibrate.Options{GPUsPerNode: cluster.VM.GPUs})
	if err != nil {
		b.Fatal(err)
	}
	cuts, err := model.FindCutPoints(spec, 71)
	if err != nil {
		b.Fatal(err)
	}
	return Inputs{
		Spec:        spec,
		Cuts:        cuts,
		Params:      params,
		GPUMem:      16 << 30,
		MTotal:      8192,
		GPUsPerNode: 1,
	}
}

// BenchmarkSweepParallel measures the full morph decision for a
// 128-GPU 8.3B job on the GOMAXPROCS worker pool. The seed (serial,
// traced simulator) implementation measured 1.033 s/op and 5070504
// allocs/op on this config.
func BenchmarkSweepParallel(b *testing.B) {
	in := benchInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(in, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the one-worker reference, isolating the
// multicore speedup from the single-simulation fast path.
func BenchmarkSweepSerial(b *testing.B) {
	in := benchInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweepWorkers(in, 128, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
