package autoconfig

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// TestSweepParallelBitIdentical is the acceptance test for the
// parallel sweep: for every fleet size, the worker-pool sweep must
// return exactly the Choice list the serial reference produces —
// same order, same estimates, same micro-batch picks.
func TestSweepParallelBitIdentical(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	for _, g := range []int{5, 24, 36, 100, 128, 300} {
		serial, serr := SweepWorkers(in, g, 1)
		parallel, perr := SweepWorkers(in, g, 8)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("G=%d: error mismatch serial=%v parallel=%v", g, serr, perr)
		}
		if serr != nil {
			continue
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("G=%d: parallel sweep diverged\nserial:   %+v\nparallel: %+v", g, serial, parallel)
		}
	}
}

// TestSweepMatchesDefault pins the exported Sweep to the same output
// as the serial reference (Sweep picks its own worker count).
func TestSweepMatchesDefault(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	serial, err := SweepWorkers(in, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Sweep(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, def) {
		t.Fatalf("Sweep diverged from serial reference\nserial: %+v\ndefault: %+v", serial, def)
	}
}
