package autoconfig

// SweepWorkers exposes the worker-count knob so tests can compare the
// parallel sweep against a serial reference for bit-identical output.
var SweepWorkers = sweepWorkers
