package autoconfig

// SweepWorkers exposes the worker-count knob so tests can compare the
// parallel sweep against a serial reference for bit-identical output.
func SweepWorkers(in Inputs, g, workers int) ([]Choice, error) {
	return sweepWorkers(in, g, workers, nil)
}
