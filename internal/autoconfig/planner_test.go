package autoconfig

import (
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/restart"
	"repro/internal/simtime"
)

// TestPlannerSecondSweepGolden is the acceptance test for the
// cross-sweep cache: a second sweep of the same fleet must return
// Choices bit-identical to the first — and to the stateless Sweep —
// while performing zero StageCosts assemblies and zero anchor
// simulations.
func TestPlannerSecondSweepGolden(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)

	stateless, err := Sweep(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	first, err := pl.Sweep(100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stateless, first) {
		t.Fatalf("planner sweep diverged from stateless sweep\nstateless: %+v\nplanner:   %+v", stateless, first)
	}
	s1 := pl.Stats()
	if s1.CostMisses == 0 || s1.CostComputes == 0 || s1.SimAnchorRuns == 0 {
		t.Fatalf("cold sweep must compute: %+v", s1)
	}
	if s1.CostHits != 0 {
		t.Fatalf("cold sweep cannot hit, got %d hits", s1.CostHits)
	}

	second, err := pl.Sweep(100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("second sweep diverged\nfirst:  %+v\nsecond: %+v", first, second)
	}
	s2 := pl.Stats()
	if s2.CostComputes != s1.CostComputes {
		t.Fatalf("second sweep recomputed StageCosts: %d → %d", s1.CostComputes, s2.CostComputes)
	}
	if s2.SimAnchorRuns != s1.SimAnchorRuns {
		t.Fatalf("second sweep re-ran anchor simulations: %d → %d", s1.SimAnchorRuns, s2.SimAnchorRuns)
	}
	if s2.CostHits == 0 {
		t.Fatal("second sweep must be served from the cache")
	}
	if s2.HitRate() <= 0 || s2.HitRate() >= 1 {
		t.Fatalf("hit rate %.2f outside (0,1) after one cold + one warm sweep", s2.HitRate())
	}
}

// TestPlannerSweepsShareAcrossFleetSizes checks the morphing-timeline
// payoff: sweeps at different (but overlapping) fleet sizes share
// candidates, so later sweeps hit keys the earlier ones populated.
func TestPlannerSweepsShareAcrossFleetSizes(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	for _, g := range []int{100, 100, 96, 100, 96} {
		want, err := Sweep(in, g)
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		got, err := pl.Sweep(g)
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("G=%d: planner sweep diverged from stateless sweep", g)
		}
	}
	s := pl.Stats()
	if s.CostHits == 0 {
		t.Fatalf("repeated fleet sizes must hit the cache: %+v", s)
	}
	// Unique work is bounded by the number of distinct keys, not the
	// number of sweeps: the two fleet sizes were each swept at least
	// twice, so under half of all lookups may have computed anything.
	if s.CostMisses >= s.CostHits {
		t.Fatalf("misses %d should be the minority across repeated sweeps (hits %d)", s.CostMisses, s.CostHits)
	}
}

// TestPlannerBestMemoized pins the decision memo: a revisited fleet
// size replays the stored choice without another sweep.
func TestPlannerBestMemoized(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	want, err := Best(in, 72)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pl.Best(72)
	if err != nil {
		t.Fatal(err)
	}
	sweepsAfterFirst := pl.Stats().Sweeps
	b, err := pl.Best(72)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, a) || !reflect.DeepEqual(a, b) {
		t.Fatalf("memoized Best diverged: stateless %+v, first %+v, second %+v", want, a, b)
	}
	s := pl.Stats()
	if s.Sweeps != sweepsAfterFirst {
		t.Fatalf("second Best swept again: %d → %d sweeps", sweepsAfterFirst, s.Sweeps)
	}
	if s.DecisionHits != 1 || s.DecisionMisses != 1 {
		t.Fatalf("decision memo counters off: %+v", s)
	}

	// Sticky infeasibility: a fleet too small for the model fails the
	// same way from the memo.
	if _, err := pl.Best(2); err == nil {
		t.Fatal("2 GPUs cannot fit 2.5B")
	}
	if _, err := pl.Best(2); err == nil {
		t.Fatal("memoized infeasibility must still fail")
	}
}

// TestPlannerInvalidatesOnSpecChange is the cache-invalidation test:
// repointing the Planner at a different job drops every cached cost
// and decision, and the next sweep recomputes from scratch —
// identical to a cold Planner for the new spec.
func TestPlannerInvalidatesOnSpecChange(t *testing.T) {
	inA := inputsFor(t, model.GPT2XL2B(), 53)
	inB := inputsFor(t, model.GPT2Megatron8B(), 71)
	pl := NewPlanner(inA)
	if _, err := pl.Sweep(100); err != nil {
		t.Fatal(err)
	}
	if warm := pl.Stats(); warm.CostComputes == 0 {
		t.Fatalf("warm-up sweep computed nothing: %+v", warm)
	}

	pl.SetInputs(inB)
	if got := pl.Stats(); got.Invalidations != 1 {
		t.Fatalf("spec change must invalidate, stats %+v", got)
	}
	got, err := pl.Sweep(128)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Sweep(inB, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-invalidation sweep diverged from a cold sweep of the new spec")
	}
	s := pl.Stats()
	if s.CostComputes == 0 || s.CostMisses == 0 {
		t.Fatalf("post-invalidation sweep must recompute: %+v", s)
	}
	if s.CostHits != 0 {
		t.Fatalf("invalidated cache cannot hit (counters reset with it): %+v", s)
	}

	// Re-setting identical inputs must NOT invalidate.
	pl.SetInputs(inB)
	if got := pl.Stats(); got.Invalidations != 1 {
		t.Fatalf("identical inputs must not invalidate, stats %+v", got)
	}

	// Changing only the cut-points (same spec) MUST invalidate: cached
	// stages — and hence costs and estimates — depend on the cuts.
	rec := inB
	rec.Cuts = append([]model.CutPoint(nil), inB.Cuts[:len(inB.Cuts)-1]...)
	pl.SetInputs(rec)
	if got := pl.Stats(); got.Invalidations != 2 {
		t.Fatalf("cut-point change must invalidate, stats %+v", got)
	}
}

// TestPlannerCappedBitIdentical pins the eviction soundness argument:
// a Planner with pathologically small cache bounds recomputes more but
// returns exactly the choices an unbounded one does, across a sequence
// of fleet sizes that forces constant generation rotation.
func TestPlannerCappedBitIdentical(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	free := NewPlannerCapped(in, 0, 0)
	tight := NewPlannerCapped(in, 3, 2)
	sizes := []int{100, 72, 96, 100, 48, 72, 100, 96}
	for _, g := range sizes {
		want, err := free.Best(g)
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		got, err := tight.Best(g)
		if err != nil {
			t.Fatalf("G=%d capped: %v", g, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("G=%d: capped planner diverged\nwant %+v\ngot  %+v", g, want, got)
		}
	}
	ts := tight.Stats()
	if ts.CostEvictions == 0 && ts.DecisionEvictions == 0 {
		t.Fatalf("cap of 3 cost keys / 2 decisions must rotate over %d sizes: %+v", len(sizes), ts)
	}
	if fs := free.Stats(); fs.CostEvictions != 0 || fs.DecisionEvictions != 0 {
		t.Fatalf("unbounded planner evicted: %+v", fs)
	}
}

// restartModelFor builds a restart cost model matching the test
// cluster.
func restartModelFor(in Inputs) *restart.Model {
	return restart.NewModel(in.Spec, hw.SpotCluster(hw.NC6v3, 300))
}

// TestBestOrHoldColdStartMorphs: with nothing running there is nothing
// to hold.
func TestBestOrHoldColdStartMorphs(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	dec, err := pl.BestOrHold(100, Choice{}, false, restartModelFor(in), Horizon{Until: simtime.Hour}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Morph {
		t.Fatal("cold start must morph")
	}
	want, err := pl.Best(100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Choice, want) {
		t.Fatal("cold-start choice must be Best(g)")
	}
	if dec.Costs.Redistribute == 0 || dec.Costs.Stop != 0 {
		t.Fatalf("cold start pays redistribution but no stop: %+v", dec.Costs)
	}
}

// TestBestOrHoldSameShapeHolds: when the sweep's best is the shape
// already running, a voluntary restart gains nothing.
func TestBestOrHoldSameShapeHolds(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	cur, err := pl.Best(100)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := pl.BestOrHold(100, cur, true, restartModelFor(in), Horizon{Until: simtime.Hour}, true)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Morph {
		t.Fatal("same-shape best must hold")
	}
}

// TestBestOrHoldWeighsHorizon is the economics test: the same
// (current, best) pair must morph when the fleet is expected to stay
// stable long enough to amortize the downtime, and hold when the next
// fleet event is imminent.
func TestBestOrHoldWeighsHorizon(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	best, err := pl.Best(100)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately slower running shape at the same fleet size.
	var cur Choice
	found := false
	sweep, err := pl.Sweep(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sweep {
		if c.P != best.P && c.TotalExPerSec() < best.TotalExPerSec() {
			cur, found = c, true
			break
		}
	}
	if !found {
		t.Skip("sweep produced no slower alternative to contrast")
	}
	rm := restartModelFor(in)
	long, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: 24 * simtime.Hour}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !long.Morph {
		t.Fatalf("a 24h stable window must justify %v of downtime for +%.1f ex/s", long.Costs.Total(), long.GainPerSec)
	}
	down := long.Costs.Total()
	short, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: down / 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if short.Morph {
		t.Fatalf("a window shorter than the %v downtime must hold", down)
	}
	if short.GainPerSec != long.GainPerSec || short.Costs != long.Costs {
		t.Fatal("pricing must not depend on the horizon")
	}
}

// BenchmarkPlannerRepeatSweep measures the acceptance scenario: two
// consecutive G=128 sweeps of the 8.3B model through one Planner. Each
// iteration builds a cold Planner, pays the full first sweep, then
// times how much the cached second sweep costs on top — the reported
// per-op time is one cold plus one warm sweep, to be read against
// BenchmarkSweepParallel (one cold sweep alone).
func BenchmarkPlannerRepeatSweep(b *testing.B) {
	in := benchInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := NewPlanner(in)
		if _, err := pl.Sweep(128); err != nil {
			b.Fatal(err)
		}
		if _, err := pl.Sweep(128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerWarmSweep isolates the warm path: every iteration is
// a fully cached G=128 sweep (the first, cold sweep happens before the
// timer starts).
func BenchmarkPlannerWarmSweep(b *testing.B) {
	in := benchInputs(b)
	pl := NewPlanner(in)
	if _, err := pl.Sweep(128); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Sweep(128); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBestOrHoldPreemptForecastHolds: the same marginal morph must go
// through when the next fleet event is expected to be an allocation,
// and hold when the forecast says another preemption is coming — the
// preempt forecast halves the gain window, so a morph that barely pays
// for itself no longer does.
func TestBestOrHoldPreemptForecastHolds(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	best, err := pl.Best(100)
	if err != nil {
		t.Fatal(err)
	}
	var cur Choice
	found := false
	sweep, err := pl.Sweep(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sweep {
		if c.P != best.P && c.TotalExPerSec() < best.TotalExPerSec() {
			cur, found = c, true
			break
		}
	}
	if !found {
		t.Skip("sweep produced no slower alternative to contrast")
	}
	rm := restartModelFor(in)
	probe, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: 24 * simtime.Hour}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Morph {
		t.Fatal("fixture must morph on a long stable window")
	}
	// A window where the morph barely pays for itself: the earned gain
	// sits at 1.5× the forfeited examples, inside (1×, 2×) so that
	// halving the gain window flips the decision.
	down := probe.Costs.Total()
	marginal := down + simtime.Duration(1.5*cur.TotalExPerSec()*down.Seconds()/probe.GainPerSec*float64(simtime.Second))
	calm, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: marginal}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !calm.Morph {
		t.Fatalf("marginal window %v must morph when no preemption is forecast", marginal)
	}
	if calm.PreemptNext {
		t.Fatal("decision must record PreemptNext = false")
	}
	stormy, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: marginal, PreemptNext: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if stormy.Morph {
		t.Fatalf("marginal window %v must hold when the next event is expected to be a preemption", marginal)
	}
	if !stormy.PreemptNext {
		t.Fatal("decision must record PreemptNext = true")
	}
	if stormy.Costs != calm.Costs || stormy.GainPerSec != calm.GainPerSec {
		t.Fatal("the forecast must change the decision, not the pricing")
	}
	// Forced paths ignore the forecast: a fleet the current shape no
	// longer fits morphs regardless.
	forced, err := pl.BestOrHold(cur.GPUsUsed-1, cur, true, rm, Horizon{Until: 0, PreemptNext: true}, false)
	if err != nil {
		t.Fatalf("BestOrHold(%d): %v", cur.GPUsUsed-1, err)
	}
	if !forced.Morph {
		t.Fatal("a fleet too small for the running shape must always morph")
	}
}
