package autoconfig

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// PlannerState is the serializable snapshot of a Planner's lifetime
// caches — what restart.SaveState persists alongside the §4.5
// checkpoint so a manager restart resumes with warm morph decisions.
// The snapshot records every Inputs field that cached values depend on
// (the same set SetInputs invalidates on); ImportState refuses a
// snapshot taken for a different job.
type PlannerState struct {
	Version     int              `json:"version"`
	Spec        string           `json:"spec"`
	MTotal      int              `json:"m_total"`
	GPUMem      int64            `json:"gpu_mem"`
	GPUsPerNode int              `json:"gpus_per_node"`
	Cuts        []model.CutPoint `json:"cuts"`
	Costs       []CostState      `json:"costs"`
	Decisions   []DecisionState  `json:"decisions"`
}

// plannerStateVersion guards the on-disk format.
const plannerStateVersion = 1

// CostState is one (p, m, d) cost-cache entry.
type CostState struct {
	P     int              `json:"p"`
	M     int              `json:"m"`
	D     int              `json:"d"`
	Nm    int              `json:"nm"`
	Est   simtime.Duration `json:"est"`
	Costs []sim.StageCosts `json:"costs"`
}

// DecisionState is one Best(g) memo entry; Err carries memoized
// infeasibility.
type DecisionState struct {
	G      int    `json:"g"`
	Choice Choice `json:"choice"`
	Err    string `json:"err,omitempty"`
}

// ExportState snapshots both caches as deterministic JSON (entries
// sorted by key). It implements restart.StateCarrier.
func (pl *Planner) ExportState() ([]byte, error) {
	pl.mu.Lock()
	in := pl.in
	decs := make(map[int]plannerDecision, pl.dec.Len())
	pl.dec.Each(func(g int, d plannerDecision) { decs[g] = d })
	cache := pl.cache
	pl.mu.Unlock()

	st := PlannerState{
		Version:     plannerStateVersion,
		Spec:        in.Spec.Name,
		MTotal:      in.MTotal,
		GPUMem:      in.GPUMem,
		GPUsPerNode: in.GPUsPerNode,
		Cuts:        append([]model.CutPoint(nil), in.Cuts...),
	}
	for key, e := range cache.snapshot() {
		st.Costs = append(st.Costs, CostState{
			P: key.p, M: key.m, D: key.d, Nm: e.nm, Est: e.est, Costs: e.costs,
		})
	}
	sort.Slice(st.Costs, func(i, j int) bool {
		a, b := st.Costs[i], st.Costs[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return a.D < b.D
	})
	for g, d := range decs {
		ds := DecisionState{G: g, Choice: d.choice}
		if d.err != nil {
			ds.Err = d.err.Error()
		}
		st.Decisions = append(st.Decisions, ds)
	}
	sort.Slice(st.Decisions, func(i, j int) bool { return st.Decisions[i].G < st.Decisions[j].G })
	return json.MarshalIndent(st, "", "  ")
}

// ImportState restores a snapshot taken by ExportState into this
// Planner's caches. The snapshot must have been taken for the same
// model (matched by spec name); entries are rebound to the Planner's
// live *model.Spec. Imported values are exactly what a cold
// computation would produce, so a warmed Planner stays bit-identical
// to a cold one — it just skips the recomputation
// (TestPlannerStateRoundTrip pins zero cost computes after import).
func (pl *Planner) ImportState(data []byte) error {
	var st PlannerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("autoconfig: planner state: %w", err)
	}
	if st.Version != plannerStateVersion {
		return fmt.Errorf("autoconfig: planner state version %d, want %d", st.Version, plannerStateVersion)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if st.Spec != pl.in.Spec.Name {
		return fmt.Errorf("autoconfig: planner state is for %q, this job trains %q", st.Spec, pl.in.Spec.Name)
	}
	// Cached decisions bake in every one of these (Nm and Examples
	// derive from M_total, placement from GPUsPerNode, feasibility from
	// GPU memory, stages from the cuts) — the same fields SetInputs
	// invalidates on. A snapshot from a differently-configured job must
	// not warm this one.
	if st.MTotal != pl.in.MTotal || st.GPUMem != pl.in.GPUMem || st.GPUsPerNode != pl.in.GPUsPerNode {
		return fmt.Errorf("autoconfig: planner state is for M=%d/mem=%d/gpn=%d, this job runs M=%d/mem=%d/gpn=%d",
			st.MTotal, st.GPUMem, st.GPUsPerNode, pl.in.MTotal, pl.in.GPUMem, pl.in.GPUsPerNode)
	}
	if !sameCuts(st.Cuts, pl.in.Cuts) {
		return fmt.Errorf("autoconfig: planner state was taken under different cut-points")
	}
	for _, cs := range st.Costs {
		key := costKey{spec: pl.in.Spec, p: cs.P, m: cs.M, d: cs.D}
		pl.cache.store(key, &costEntry{costs: cs.Costs, nm: cs.Nm, est: cs.Est})
	}
	for _, ds := range st.Decisions {
		dec := plannerDecision{choice: ds.Choice}
		if ds.Err != "" {
			dec.err = errors.New(ds.Err)
		}
		pl.dec.Put(ds.G, dec)
	}
	return nil
}
