package autoconfig

import (
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/simtime"
)

// synth builds a synthetic evaluated choice with a given shape,
// throughput and footprint (Est derives from Examples/exPerSec).
func synth(p, d, gpus, examples int, exPerSec float64) Choice {
	return Choice{
		P: p, D: d, M: 4, Nm: 1,
		GPUsUsed: gpus,
		Examples: examples,
		Est:      simtime.FromSeconds(float64(examples) / exPerSec),
	}
}

func TestObjectiveValidate(t *testing.T) {
	if err := (Objective{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Objective{Kind: ObjMinDollarPerExample}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (Objective{Kind: ObjDeadline}).Validate() == nil {
		t.Fatal("deadline without target must fail")
	}
	ok := Objective{Kind: ObjDeadline, DeadlineAt: simtime.Time(simtime.Hour), TargetExamples: 1e6}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Objective{Kind: ObjectiveKind(9)}).Validate() == nil {
		t.Fatal("unknown kind must fail")
	}
	if (Objective{}).Shrinks() {
		t.Fatal("max throughput must not shrink")
	}
	if !(Objective{Kind: ObjMinDollarPerExample}).Shrinks() || !ok.Shrinks() {
		t.Fatal("dollar objectives must shrink")
	}
}

// TestMinDollarChoiceShrinksOnSpike is the marginal-economics unit
// test: the same candidate ladder keeps the full fleet at mean price
// and walks down to the GPU-efficient core when the spot price
// spikes.
func TestMinDollarChoiceShrinksOnSpike(t *testing.T) {
	// A ladder with diminishing returns: throughput grows sublinearly
	// in GPUs (bubble + allreduce overheads), so the marginal
	// $-per-example of the top rungs is worse than the average.
	cands := []Choice{
		synth(18, 3, 54, 8192, 60),
		synth(18, 6, 108, 8192, 110), // marginal: 54 GPUs for +50 ex/s
		synth(18, 8, 144, 8192, 140), // marginal: 36 GPUs for +30 ex/s
	}
	sortChoices(cands)

	atMean := minDollarChoice(cands, Econ{PerGPUHour: 2.4, MeanPerGPUHour: 2.4})
	if atMean.GPUsUsed != 144 {
		t.Fatalf("at mean price the full fleet should pass the marginal test, got %d GPUs", atMean.GPUsUsed)
	}
	spike := minDollarChoice(cands, Econ{PerGPUHour: 2.4 * 2, MeanPerGPUHour: 2.4})
	if spike.GPUsUsed >= atMean.GPUsUsed {
		t.Fatalf("a 2x spike must shed marginal replicas: %d GPUs vs %d at mean", spike.GPUsUsed, atMean.GPUsUsed)
	}
	if spike.GPUsUsed != 54 {
		t.Fatalf("2x spike should fall back to the GPU-efficient core (54), got %d", spike.GPUsUsed)
	}
	cheap := minDollarChoice(cands, Econ{PerGPUHour: 2.4 / 2, MeanPerGPUHour: 2.4})
	if cheap.GPUsUsed != 144 {
		t.Fatalf("a cheap period must keep the full fleet, got %d GPUs", cheap.GPUsUsed)
	}
	// A dominating candidate (more throughput, no more GPUs) always
	// wins regardless of price.
	dominating := append(append([]Choice(nil), cands...), synth(9, 6, 54, 8192, 70))
	sortChoices(dominating)
	spike = minDollarChoice(dominating, Econ{PerGPUHour: 24, MeanPerGPUHour: 2.4})
	if spike.TotalExPerSec() < 69 {
		t.Fatalf("dominating candidate must win under any price, got %+v", spike)
	}
}

func TestRequiredRateAndDeadlineChoice(t *testing.T) {
	obj := Objective{Kind: ObjDeadline, DeadlineAt: simtime.Time(2 * simtime.Hour), TargetExamples: 720000}
	ec := Econ{Now: simtime.Time(simtime.Hour), DoneExamples: 360000}
	// 360k examples left in 3600s → 100 ex/s × 1.5 margin.
	if got := requiredRate(obj, ec); got < 149 || got > 151 {
		t.Fatalf("requiredRate = %v, want ~150", got)
	}
	// Already met → zero.
	if got := requiredRate(obj, Econ{Now: ec.Now, DoneExamples: 1e6}); got != 0 {
		t.Fatalf("met target must need 0, got %v", got)
	}
	// Past the deadline → zero (nothing to race for).
	if got := requiredRate(obj, Econ{Now: simtime.Time(3 * simtime.Hour)}); got != 0 {
		t.Fatalf("past deadline must need 0, got %v", got)
	}

	cands := []Choice{
		synth(18, 3, 54, 8192, 60),
		synth(18, 6, 108, 8192, 120),
		synth(18, 8, 144, 8192, 140),
	}
	sortChoices(cands)
	// Required ~150 with 2x headroom → nothing clears 300: flat out.
	got := deadlineChoice(cands, obj, ec)
	if got.GPUsUsed != 144 {
		t.Fatalf("a thin margin must run flat out, got %d GPUs", got.GPUsUsed)
	}
	// Comfortably ahead (~50 ex/s required, 100 with headroom): the
	// 108-GPU rung is the cheapest that clears it.
	ahead := Objective{Kind: ObjDeadline, DeadlineAt: obj.DeadlineAt, TargetExamples: 480000}
	got = deadlineChoice(cands, ahead, ec)
	if got.GPUsUsed != 108 {
		t.Fatalf("comfortably ahead should pick the cheapest config clearing ~83 ex/s, got %d GPUs", got.GPUsUsed)
	}
	// Nothing fast enough → flat out.
	rush := Objective{Kind: ObjDeadline, DeadlineAt: obj.DeadlineAt, TargetExamples: 5e6}
	got = deadlineChoice(cands, rush, ec)
	if got.GPUsUsed != 144 {
		t.Fatalf("unreachable deadline must run flat out, got %d GPUs", got.GPUsUsed)
	}
	// Ahead of schedule → min-dollar economics.
	got = deadlineChoice(cands, obj, Econ{Now: ec.Now, DoneExamples: 1e6, PerGPUHour: 4.8, MeanPerGPUHour: 2.4})
	if got.GPUsUsed != 54 {
		t.Fatalf("ahead of schedule in a spike must shrink, got %d GPUs", got.GPUsUsed)
	}
}

// TestBestForMaxThroughputDelegates: the default objective must reuse
// the memoized Best(g) decision — same choice, same caching.
func TestBestForMaxThroughputDelegates(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	want, err := pl.Best(100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.BestFor(100, Objective{}, Econ{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("BestFor(max-throughput) diverged from Best:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestBestForMinDollarUsesFewerGPUsOnSpike: on real sweep candidates,
// a price spike must select a configuration using at most as many
// GPUs as the mean-price selection, and both must stay within the
// fleet.
func TestBestForMinDollarUsesFewerGPUsOnSpike(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	obj := Objective{Kind: ObjMinDollarPerExample}
	atMean, err := pl.BestFor(150, obj, Econ{PerGPUHour: 2.4, MeanPerGPUHour: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	spike, err := pl.BestFor(150, obj, Econ{PerGPUHour: 7.2, MeanPerGPUHour: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	if atMean.GPUsUsed > 150 || spike.GPUsUsed > 150 {
		t.Fatalf("selection exceeded the fleet: %d / %d", atMean.GPUsUsed, spike.GPUsUsed)
	}
	if spike.GPUsUsed >= atMean.GPUsUsed {
		t.Fatalf("3x spike must shed capacity: %d GPUs vs %d at mean price", spike.GPUsUsed, atMean.GPUsUsed)
	}
	if atMean.GPUsUsed < 75 {
		t.Fatalf("mean price should keep most of the fleet, got %d GPUs", atMean.GPUsUsed)
	}
	t.Logf("mean-price pick %dx%d (%d GPUs), spike pick %dx%d (%d GPUs)",
		atMean.P, atMean.D, atMean.GPUsUsed, spike.P, spike.D, spike.GPUsUsed)
}

// TestBestOrHoldObjectiveDefaultEqualsBestOrHold pins the
// zero-behavior guarantee at the decision level.
func TestBestOrHoldObjectiveDefaultEqualsBestOrHold(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	cur, err := pl.Evaluate(18, 4)
	if err != nil {
		t.Fatal(err)
	}
	rm := restartModelFor(in)
	for _, hz := range []Horizon{
		{Until: simtime.Hour},
		{Until: 20 * simtime.Minute, PreemptNext: true},
		{Until: 6 * simtime.Hour, PreemptNext: true, HoldDiscount: 0.3},
	} {
		want, err := pl.BestOrHold(100, cur, true, rm, hz, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.BestOrHoldObjective(100, cur, true, rm, hz, false, Objective{}, Econ{PerGPUHour: 2.4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("hz %+v: objective path diverged\nwant %+v\ngot  %+v", hz, want, got)
		}
	}
}

// TestHoldDiscountTightensHolds: the same marginal morph that goes
// through at the legacy ½ discount holds under a burst-calibrated
// (smaller) one.
func TestHoldDiscountTightensHolds(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	pl := NewPlanner(in)
	cur, err := pl.Evaluate(18, 4)
	if err != nil {
		t.Fatal(err)
	}
	rm := restartModelFor(in)
	// Find a horizon where the ½-discounted morph is marginal-but-
	// profitable, then tighten the discount and expect a hold.
	base, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: 24 * simtime.Hour}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Morph || base.GainPerSec <= 0 {
		t.Skip("no profitable morph at this shape; nothing to discount")
	}
	down := base.Costs.Total()
	// At the legacy ½: earned = gain·(until−down)/2 > forfeited ⇒
	// marginal horizon just above down + 2·forfeited/gain.
	forfeit := cur.TotalExPerSec() * down.Seconds()
	marginal := down + simtime.FromSeconds(2.2*forfeit/base.GainPerSec)
	half, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: marginal, PreemptNext: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !half.Morph {
		t.Skip("morph not profitable even at ½; widen the margin")
	}
	tight, err := pl.BestOrHold(100, cur, true, rm, Horizon{Until: marginal, PreemptNext: true, HoldDiscount: 0.15}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Morph {
		t.Fatal("a burst-calibrated discount must hold where the fixed ½ morphed")
	}
}
