package autoconfig

import (
	"repro/internal/restart"
	"repro/internal/simtime"
)

// Horizon is the spot-derived forecast a morph-or-hold decision
// discounts throughput gains over: how long until the next fleet
// event, and whether that event is expected to be another preemption
// (spot.GapEstimator.NextKind). The kind matters because a predicted
// preemption ends the stable window with a forced restart that
// re-prices everything anyway — and preemptions cluster when the
// provider reclaims capacity, so the pooled EWMA gap overstates the
// window a voluntary morph's gain can amortize over.
type Horizon struct {
	// Until is the expected time to the next fleet event.
	Until simtime.Duration
	// PreemptNext marks the next expected event as a preemption.
	PreemptNext bool
	// HoldDiscount is the fraction of the post-downtime gain window a
	// PreemptNext decision still credits, calibrated from the per-kind
	// hazard ratio: gap_preempt / (gap_preempt + gap_alloc), i.e. the
	// probability that the next fleet event is an allocation rather
	// than the forecast preemption. When preemptions dominate the
	// event stream (a reclaim burst) the window is discounted harder
	// than the symmetric case; when the tracks are balanced it equals
	// the legacy fixed ½. Zero means "uncalibrated" and falls back to
	// that fixed ½ — the prior before both kind tracks have observed
	// gaps.
	HoldDiscount float64
}

// discounted applies the preempt-next discount to a usable gain
// window: the calibrated per-kind hazard ratio when available, the
// legacy fixed ½ otherwise.
func (hz Horizon) discounted(usable simtime.Duration) simtime.Duration {
	if !hz.PreemptNext {
		return usable
	}
	if hz.HoldDiscount > 0 {
		return simtime.Duration(float64(usable) * hz.HoldDiscount)
	}
	return usable / 2
}

// MorphDecision is the outcome of a cost-aware BestOrHold evaluation:
// either reconfigure to Choice and pay Costs of downtime, or hold the
// current configuration because the morph would not pay for itself
// before the fleet likely changes again.
type MorphDecision struct {
	// Morph reports whether reconfiguring beats holding.
	Morph bool
	// Choice is the sweep's best configuration for the new fleet (the
	// would-be target even when holding).
	Choice Choice
	// Costs is the modeled downtime of moving to Choice.
	Costs restart.Costs
	// GainPerSec is the steady-state throughput delta of Choice over
	// the held configuration (examples/s; <= 0 always holds).
	GainPerSec float64
	// Horizon is the expected time until the next fleet event the
	// decision discounted the gain over.
	Horizon simtime.Duration
	// PreemptNext records whether the decision treated the next fleet
	// event as a likely preemption (and so discounted the gain window).
	PreemptNext bool
	// MorphCostPerEx and HoldCostPerEx are the dollars-per-example of
	// the two paths over the decision window, filled only by the
	// dollar objectives (BestOrHoldObjective) when both paths produce
	// examples — the quantities the decision compared.
	MorphCostPerEx, HoldCostPerEx float64
}

// BestOrHold is the cost-aware variant of Best: given the currently
// running configuration, a reconfiguration-cost model and the expected
// time until the next fleet event (spot-derived), it decides whether
// morphing to the sweep's best choice for g GPUs pays for itself
// before the fleet likely changes again.
//
// The trade is examples: morphing forfeits cur's throughput for the
// modeled downtime, then earns the throughput gain only over whatever
// remains of the expected stable window. Hold when
//
//	gain × max(0, horizon − downtime)  ≤  cur_throughput × downtime
//
// i.e. when modeled downtime exceeds the discounted steady-state gain.
// When the forecast expects the next fleet event to be another
// preemption (hz.PreemptNext), the post-downtime gain window is
// additionally discounted before the comparison — a preemption forces
// a restart that re-prices the configuration anyway, and preemption
// bursts make the EWMA gap an overestimate of the remaining window —
// so marginal morphs hold. The discount is hz.HoldDiscount, the
// calibrated hazard-ratio fraction (falling back to ½ while
// uncalibrated; see Horizon). A job that is not running, or whose current
// shape no longer fits the fleet, always morphs. The underlying
// Best(g) is memoized as usual, so the added decision work is
// arithmetic, not simulation.
func (pl *Planner) BestOrHold(g int, cur Choice, running bool, rm *restart.Model, hz Horizon, dirty bool) (MorphDecision, error) {
	best, err := pl.Best(g)
	if err != nil {
		return MorphDecision{}, err
	}
	dec := MorphDecision{Choice: best, Horizon: hz.Until, PreemptNext: hz.PreemptNext}
	if !running || rm == nil {
		dec.Morph = true
		if rm != nil {
			dec.Costs = rm.Price(restart.Assignment{}, assignmentOf(best), false)
		}
		return dec, nil
	}
	dec.Costs = rm.Price(assignmentOf(cur), assignmentOf(best), dirty)
	dec.GainPerSec = best.TotalExPerSec() - cur.TotalExPerSec()
	if cur.GPUsUsed > g {
		// The running shape no longer fits the fleet: forced morph.
		dec.Morph = true
		return dec, nil
	}
	if best.P == cur.P && best.D == cur.D {
		// Same shape: nothing to gain from a voluntary restart.
		return dec, nil
	}
	if dec.GainPerSec <= 0 {
		return dec, nil
	}
	down := dec.Costs.Total()
	usable := hz.Until - down
	if usable < 0 {
		usable = 0
	}
	usable = hz.discounted(usable)
	earned := dec.GainPerSec * usable.Seconds()
	forfeited := cur.TotalExPerSec() * down.Seconds()
	dec.Morph = earned > forfeited
	return dec, nil
}

// assignmentOf converts a sweep choice into the restart model's
// costing terms.
func assignmentOf(c Choice) restart.Assignment {
	return restart.Assignment{Stages: c.Stages, D: c.D}
}
