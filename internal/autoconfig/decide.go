package autoconfig

import (
	"repro/internal/restart"
	"repro/internal/simtime"
)

// MorphDecision is the outcome of a cost-aware BestOrHold evaluation:
// either reconfigure to Choice and pay Costs of downtime, or hold the
// current configuration because the morph would not pay for itself
// before the fleet likely changes again.
type MorphDecision struct {
	// Morph reports whether reconfiguring beats holding.
	Morph bool
	// Choice is the sweep's best configuration for the new fleet (the
	// would-be target even when holding).
	Choice Choice
	// Costs is the modeled downtime of moving to Choice.
	Costs restart.Costs
	// GainPerSec is the steady-state throughput delta of Choice over
	// the held configuration (examples/s; <= 0 always holds).
	GainPerSec float64
	// Horizon is the expected time until the next fleet event the
	// decision discounted the gain over.
	Horizon simtime.Duration
}

// BestOrHold is the cost-aware variant of Best: given the currently
// running configuration, a reconfiguration-cost model and the expected
// time until the next fleet event (spot-derived), it decides whether
// morphing to the sweep's best choice for g GPUs pays for itself
// before the fleet likely changes again.
//
// The trade is examples: morphing forfeits cur's throughput for the
// modeled downtime, then earns the throughput gain only over whatever
// remains of the expected stable window. Hold when
//
//	gain × max(0, horizon − downtime)  ≤  cur_throughput × downtime
//
// i.e. when modeled downtime exceeds the discounted steady-state gain.
// A job that is not running, or whose current shape no longer fits the
// fleet, always morphs. The underlying Best(g) is memoized as usual,
// so the added decision work is arithmetic, not simulation.
func (pl *Planner) BestOrHold(g int, cur Choice, running bool, rm *restart.Model, horizon simtime.Duration, dirty bool) (MorphDecision, error) {
	best, err := pl.Best(g)
	if err != nil {
		return MorphDecision{}, err
	}
	dec := MorphDecision{Choice: best, Horizon: horizon}
	if !running || rm == nil {
		dec.Morph = true
		if rm != nil {
			dec.Costs = rm.Price(restart.Assignment{}, assignmentOf(best), false)
		}
		return dec, nil
	}
	dec.Costs = rm.Price(assignmentOf(cur), assignmentOf(best), dirty)
	dec.GainPerSec = best.TotalExPerSec() - cur.TotalExPerSec()
	if cur.GPUsUsed > g {
		// The running shape no longer fits the fleet: forced morph.
		dec.Morph = true
		return dec, nil
	}
	if best.P == cur.P && best.D == cur.D {
		// Same shape: nothing to gain from a voluntary restart.
		return dec, nil
	}
	if dec.GainPerSec <= 0 {
		return dec, nil
	}
	down := dec.Costs.Total()
	usable := horizon - down
	if usable < 0 {
		usable = 0
	}
	earned := dec.GainPerSec * usable.Seconds()
	forfeited := cur.TotalExPerSec() * down.Seconds()
	dec.Morph = earned > forfeited
	return dec, nil
}

// assignmentOf converts a sweep choice into the restart model's
// costing terms.
func assignmentOf(c Choice) restart.Assignment {
	return restart.Assignment{Stages: c.Stages, D: c.D}
}
