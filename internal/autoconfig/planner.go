package autoconfig

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/gen2"
	"repro/internal/model"
	"repro/internal/obs"
)

// Planner owns the morph decisions of one training job across its
// lifetime. The paper's manager (§4.6) re-runs the §4.4 simulator
// sweep on every change in GPU availability, and on a spot fleet those
// changes arrive continuously (Figure 8 reconfigures dozens of times
// over 60 hours) — so the latency of each decision is wasted cluster
// time (§7.2). The Planner amortizes that cost with two caches that
// survive across sweeps:
//
//   - a cost cache keyed on (spec, p, m, d) holding the assembled
//     calibrate.Params.StageCosts slice and the anchor-simulation
//     makespan estimate for the candidate — every quantity the sweep
//     computes per candidate is deterministic in that key, so a
//     morphing timeline pays partition costs once per unique
//     configuration rather than once per sweep;
//   - a decision memo per GPU count g, so a fleet that revisits a size
//     (constant single-VM churn around a quantized level) replays the
//     stored Best choice without touching the simulator at all.
//
// Sweeps through a Planner remain bit-identical to the stateless
// Sweep/Best functions: cached values are exactly the values a cold
// evaluation computes (TestPlannerSecondSweepGolden pins this). A
// Planner is safe for concurrent use.
//
// Both caches are generation-bounded behind gen2.Map (segmented LRU):
// a months-long job cannot grow them without limit, and because every
// cached value is deterministic in its key, eviction only ever costs
// recomputation — never a different decision
// (TestPlannerCappedBitIdentical here,
// TestTimelineCappedPlannerBitIdentical at the manager level).
type Planner struct {
	mu       sync.Mutex
	in       Inputs
	cache    *costCache
	costCap  int
	decCap   int
	dec      *gen2.Map[int, plannerDecision]
	sweeps   uint64
	decHits  uint64
	decMiss  uint64
	invalids uint64
	met      *obs.Metrics
}

// Default cache bounds: generous for any realistic fleet (one decision
// per quantized fleet size, a handful of cost keys per size), small
// enough that a year of churn stays O(MB).
const (
	DefaultCostCacheCap = 4096
	DefaultDecisionCap  = 512
)

// plannerDecision memoizes one Best(g) outcome, including sticky
// infeasibility (a fleet too small for the model stays too small).
type plannerDecision struct {
	choice Choice
	err    error
}

// NewPlanner builds a Planner for the job described by in with the
// default cache bounds. Create one per job and keep it for the job's
// lifetime — the caches are the point.
func NewPlanner(in Inputs) *Planner {
	return NewPlannerCapped(in, DefaultCostCacheCap, DefaultDecisionCap)
}

// NewPlannerCapped builds a Planner with explicit cache bounds:
// costEntries keys per cost-cache generation and decisions entries per
// decision-memo generation (<= 0 means unbounded).
func NewPlannerCapped(in Inputs, costEntries, decisions int) *Planner {
	return &Planner{
		in:      in,
		cache:   newCostCacheCap(64, costEntries),
		costCap: costEntries,
		decCap:  decisions,
		dec:     gen2.New[int, plannerDecision](decisions, 0),
	}
}

// SetObserver points the Planner at a metrics registry. Each Sweep
// then self-profiles its wall-clock latency into the
// "wall.planner.sweep_us" histogram — the ROADMAP item 2 measurement
// baseline — and Best(g) memo lookups count into
// "planner.decision_{hits,misses}". A nil registry (the default)
// disables observation; decisions are unaffected either way.
func (pl *Planner) SetObserver(m *obs.Metrics) {
	pl.mu.Lock()
	pl.met = m
	pl.mu.Unlock()
}

// Inputs reports the job description the Planner currently plans for.
func (pl *Planner) Inputs() Inputs {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.in
}

// SetInputs repoints the Planner at a new job description. If anything
// that cached values depend on changed — the model spec, the
// cut-points, the calibration, the device memory, M_total or the
// placement hierarchy — every cache is invalidated: calibration is
// scale-invariant (§4.3) so this never happens on a morph, only when
// the job itself changes.
func (pl *Planner) SetInputs(in Inputs) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if same := pl.in.Spec == in.Spec &&
		pl.in.Params == in.Params &&
		pl.in.GPUMem == in.GPUMem &&
		pl.in.MTotal == in.MTotal &&
		pl.in.GPUsPerNode == in.GPUsPerNode &&
		sameCuts(pl.in.Cuts, in.Cuts); !same {
		pl.cache = newCostCacheCap(64, pl.costCap)
		pl.dec = gen2.New[int, plannerDecision](pl.decCap, 0)
		pl.invalids++
	}
	pl.in = in
}

// sameCuts reports whether two cut-point sets partition identically —
// cached stages (and hence costs and estimates) depend on the cuts,
// not just the spec.
func sameCuts(a, b []model.CutPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sweep evaluates every feasible pipeline depth for g GPUs (§4.4),
// serving repeated candidates from the lifetime cost cache. Output is
// bit-identical to the stateless Sweep.
func (pl *Planner) Sweep(g int) ([]Choice, error) {
	pl.mu.Lock()
	in, cache, met := pl.in, pl.cache, pl.met
	pl.sweeps++
	pl.mu.Unlock()
	if met.Enabled() {
		start := time.Now()
		defer func() {
			met.Observe("wall.planner.sweep_us", float64(time.Since(start).Microseconds()))
			met.Count("planner.sweeps", 1)
		}()
	}
	return sweepWorkers(in, g, runtime.GOMAXPROCS(0), cache)
}

// Evaluate simulates a single explicit (P, D) shape through the
// lifetime cache.
func (pl *Planner) Evaluate(p, d int) (Choice, error) {
	pl.mu.Lock()
	in, cache := pl.in, pl.cache
	pl.mu.Unlock()
	return evaluate(in, p, d, cache)
}

// Best returns the highest-throughput configuration for g GPUs,
// memoized per fleet size: the §4.6 manager quantizes fleet sizes
// before deciding, so spot churn revisits the same g constantly and
// replays the stored decision for free.
func (pl *Planner) Best(g int) (Choice, error) {
	pl.mu.Lock()
	if dec, ok := pl.dec.Get(g); ok {
		pl.decHits++
		met := pl.met
		pl.mu.Unlock()
		met.Count("planner.decision_hits", 1)
		return dec.choice, dec.err
	}
	pl.decMiss++
	met := pl.met
	pl.mu.Unlock()
	met.Count("planner.decision_misses", 1)

	choice, err := best(g, pl.Sweep)

	pl.mu.Lock()
	pl.dec.Put(g, plannerDecision{choice: choice, err: err})
	pl.mu.Unlock()
	return choice, err
}

// Stats returns a snapshot of the Planner's cache effectiveness.
func (pl *Planner) Stats() PlannerStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return PlannerStats{
		Sweeps:            pl.sweeps,
		CostHits:          pl.cache.hits.Load(),
		CostMisses:        pl.cache.misses.Load(),
		CostComputes:      pl.cache.costComputes.Load(),
		SimAnchorRuns:     pl.cache.simAnchors.Load(),
		CostEvictions:     pl.cache.evictions(),
		DecisionHits:      pl.decHits,
		DecisionMisses:    pl.decMiss,
		DecisionEvictions: pl.dec.Rotations(),
		Invalidations:     pl.invalids,
	}
}

// PlannerStats measures how much morph-decision work the lifetime
// caches absorbed — the observable behind the §7.2 requirement that
// reconfiguration decisions cost far less than the work they
// reschedule.
type PlannerStats struct {
	// Sweeps counts Sweep invocations (Best misses sweep once).
	Sweeps uint64
	// CostHits and CostMisses count candidate lookups in the
	// (spec, p, m, d) cost cache.
	CostHits, CostMisses uint64
	// CostComputes counts actual calibrate.Params.StageCosts
	// assemblies; a second sweep of the same fleet performs zero.
	CostComputes uint64
	// SimAnchorRuns counts candidates whose anchor simulations ran
	// (cache misses that reached the simulator).
	SimAnchorRuns uint64
	// CostEvictions counts cost-cache generation rotations (a rotation
	// drops the oldest generation's keys).
	CostEvictions uint64
	// DecisionHits and DecisionMisses count Best(g) memo lookups.
	DecisionHits, DecisionMisses uint64
	// DecisionEvictions counts decision-memo generation rotations.
	DecisionEvictions uint64
	// Invalidations counts SetInputs calls that reset the caches.
	Invalidations uint64
}

// HitRate is the fraction of candidate evaluations served from the
// cost cache.
func (s PlannerStats) HitRate() float64 {
	total := s.CostHits + s.CostMisses
	if total == 0 {
		return 0
	}
	return float64(s.CostHits) / float64(total)
}
