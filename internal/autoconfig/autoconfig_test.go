package autoconfig

import (
	"testing"

	"repro/internal/calibrate"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/testbed"
)

func inputsFor(t *testing.T, spec *model.Spec, k int) Inputs {
	t.Helper()
	cluster := hw.SpotCluster(hw.NC6v3, 300)
	tb := testbed.New(cluster, 21)
	params, err := calibrate.Run(spec, tb, calibrate.Options{GPUsPerNode: cluster.VM.GPUs})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := model.FindCutPoints(spec, k)
	if err != nil {
		t.Fatal(err)
	}
	return Inputs{
		Spec:        spec,
		Cuts:        cuts,
		Params:      params,
		GPUMem:      16 << 30,
		MTotal:      8192,
		GPUsPerNode: 1,
	}
}

func TestGradAccum(t *testing.T) {
	if GradAccum(8192, 4, 16) != 128 {
		t.Fatal("8192/(4*16) = 128")
	}
	if GradAccum(8192, 4, 100) != 21 {
		t.Fatal("ceil(8192/400) = 21")
	}
	if GradAccum(1, 32, 32) != 1 {
		t.Fatal("Nm floor is 1")
	}
}

func TestGradAccumPreservesBatch(t *testing.T) {
	// §4.2: m·Nm·D stays within one micro-batch row of M_total.
	for _, d := range []int{1, 2, 3, 7, 16, 100} {
		for _, m := range []int{1, 2, 4, 8} {
			nm := GradAccum(8192, m, d)
			eff := m * nm * d
			if eff < 8192 || eff >= 8192+m*d {
				t.Fatalf("d=%d m=%d: effective batch %d not in [8192, 8192+%d)", d, m, eff, m*d)
			}
		}
	}
}

func TestBestConfig25B(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	best, err := Best(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if best.P*best.D > 100 {
		t.Fatalf("config %v uses more GPUs than available", best)
	}
	// Table 3 at G=100: moderate depths (6–18) win; extremes lose.
	if best.P < 4 || best.P > 20 {
		t.Fatalf("best depth %d outside the plausible band (Table 3 shows 6–18)", best.P)
	}
	if best.TotalExPerSec() <= 0 || best.ExPerSecPerGPU() <= 0 {
		t.Fatal("throughput must be positive")
	}
	if best.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPipelineDepthSensitivity(t *testing.T) {
	// Table 3 / Observation 2: neither extreme wins. At G=36 the
	// mid-depth 6x6 outperforms the deep 18x2; at G=100 the deep 18x5
	// loses clearly to 6x16 and 9x11, which sit within a few percent
	// of each other.
	in := inputsFor(t, model.GPT2XL2B(), 53)
	at := func(g, p int) Choice {
		c, err := Evaluate(in, p, g/p)
		if err != nil {
			t.Fatalf("G=%d P=%d: %v", g, p, err)
		}
		return c
	}
	if s, d := at(36, 6), at(36, 18); s.TotalExPerSec() <= d.TotalExPerSec() {
		t.Fatalf("G=36: 6x6 (%.1f) must beat 18x2 (%.1f)", s.TotalExPerSec(), d.TotalExPerSec())
	}
	six, nine, deep := at(100, 6), at(100, 9), at(100, 18)
	if deep.TotalExPerSec() >= six.TotalExPerSec() || deep.TotalExPerSec() >= nine.TotalExPerSec() {
		t.Fatalf("G=100: 18x5 (%.1f) must lose to 6x16 (%.1f) and 9x11 (%.1f)",
			deep.TotalExPerSec(), six.TotalExPerSec(), nine.TotalExPerSec())
	}
	gap := six.TotalExPerSec() / nine.TotalExPerSec()
	if gap < 0.85 || gap > 1.18 {
		t.Fatalf("G=100: 6x16 and 9x11 should be within ~15%% (paper: 155 vs 164), got ratio %.2f", gap)
	}
}

func TestSweepShapes(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	sweep, err := Sweep(in, 36)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) == 0 {
		t.Fatal("no feasible configs")
	}
	seen := map[int]bool{}
	for _, c := range sweep {
		if seen[c.P] {
			t.Fatalf("depth %d evaluated twice", c.P)
		}
		seen[c.P] = true
		if c.D != 36/c.P {
			t.Fatalf("P=%d: D=%d, want %d", c.P, c.D, 36/c.P)
		}
		if c.Examples < in.MTotal {
			t.Fatalf("P=%d: effective batch %d below M_total", c.P, c.Examples)
		}
	}
	// The 2.5B model cannot run at P=1 on 16 GB (needs 40 GB of state).
	if seen[1] {
		t.Fatal("P=1 must be memory-infeasible for 2.5B on 16GB")
	}
}

func TestMemoryForcesDeepPipelines8B(t *testing.T) {
	in := inputsFor(t, model.GPT2Megatron8B(), 71)
	sweep, err := Sweep(in, 128)
	if err != nil {
		t.Fatal(err)
	}
	minP := sweep[0].P
	for _, c := range sweep {
		if c.P < minP {
			minP = c.P
		}
	}
	// 8.3B at 16·N bytes needs ≥ 133GB of state → at least ~9 stages.
	if minP < 9 {
		t.Fatalf("min feasible depth %d implausibly shallow for 8.3B", minP)
	}
}

func TestErrors(t *testing.T) {
	in := inputsFor(t, model.GPT2XL2B(), 53)
	if _, err := Sweep(in, 0); err == nil {
		t.Fatal("G=0 must fail")
	}
	if _, err := Best(in, 2); err == nil {
		t.Fatal("2 GPUs cannot fit 2.5B")
	}
	if _, err := Evaluate(in, 0, 1); err == nil {
		t.Fatal("P=0 must fail")
	}
}

func TestMorphKeepsBatchAcrossScales(t *testing.T) {
	// The correctness-preserving core: for any fleet size the chosen
	// config processes the same (or minimally padded) global batch.
	in := inputsFor(t, model.GPT2XL2B(), 53)
	for _, g := range []int{24, 36, 72, 150, 300} {
		best, err := Best(in, g)
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		if best.Examples < in.MTotal || best.Examples >= in.MTotal+best.M*best.D {
			t.Fatalf("G=%d: effective batch %d strays from M_total %d", g, best.Examples, in.MTotal)
		}
	}
}

func TestUnusedGPUsBounded(t *testing.T) {
	// §4.4: "few GPUs may be left unused" — but never a full pipeline's
	// worth.
	in := inputsFor(t, model.GPT2XL2B(), 53)
	best, err := Best(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	unused := 100 - best.GPUsUsed
	if unused >= best.P {
		t.Fatalf("%d GPUs idle with P=%d — another replica would fit", unused, best.P)
	}
}
